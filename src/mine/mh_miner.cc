#include "mine/mh_miner.h"

#include <algorithm>
#include <cmath>

#include "candgen/hash_count.h"
#include "candgen/row_sort.h"
#include "mine/parallel.h"
#include "mine/verifier.h"

namespace sans {

Status MhMinerConfig::Validate() const {
  SANS_RETURN_IF_ERROR(min_hash.Validate());
  if (delta < 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must lie in [0, 1)");
  }
  SANS_RETURN_IF_ERROR(execution.Validate());
  return Status::OK();
}

MhMiner::MhMiner(const MhMinerConfig& config) : config_(config) {
  SANS_CHECK(config.Validate().ok());
}

Result<MiningReport> MhMiner::Mine(const RowStreamSource& source,
                                   double threshold) {
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("threshold must lie in (0, 1]");
  }
  MiningReport report;
  // One pool shared by all three phases (null => sequential).
  const std::unique_ptr<ThreadPool> pool = MaybeCreatePool(config_.execution);

  // Phase 1: signature computation (single pass).
  SignatureMatrix signatures(1, 0);
  {
    ScopedPhase phase(&report.timers, kPhaseSignatures);
    SANS_ASSIGN_OR_RETURN(
        signatures, ComputeMinHashParallel(source, config_.min_hash,
                                           config_.execution, pool.get()));
  }

  // Phase 2: candidate generation in main memory.
  CandidateSet candidates;
  {
    ScopedPhase phase(&report.timers, kPhaseCandidates);
    const int k = config_.min_hash.num_hashes;
    const int min_agreements = std::max(
        1,
        static_cast<int>(std::ceil((1.0 - config_.delta) * threshold * k)));
    switch (config_.candidates) {
      case MhCandidateAlgorithm::kRowSort: {
        RowSorter sorter(&signatures);
        candidates = sorter.Candidates(min_agreements);
        break;
      }
      case MhCandidateAlgorithm::kHashCount:
        SANS_ASSIGN_OR_RETURN(
            candidates,
            HashCountMinHashParallel(signatures, min_agreements, pool.get()));
        break;
    }
  }
  report.candidates = candidates.SortedPairs();
  report.num_candidates = report.candidates.size();

  // Phase 3: exact verification (second pass).
  {
    ScopedPhase phase(&report.timers, kPhaseVerify);
    SANS_ASSIGN_OR_RETURN(
        report.pairs,
        VerifyCandidatesParallel(source, report.candidates, threshold,
                                 config_.execution, pool.get()));
  }
  return report;
}

}  // namespace sans
