#include "mine/mh_miner.h"

#include <algorithm>
#include <cmath>

#include "candgen/hash_count.h"
#include "candgen/row_sort.h"
#include "mine/verifier.h"

namespace sans {

Status MhMinerConfig::Validate() const {
  SANS_RETURN_IF_ERROR(min_hash.Validate());
  if (delta < 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must lie in [0, 1)");
  }
  return Status::OK();
}

MhMiner::MhMiner(const MhMinerConfig& config) : config_(config) {
  SANS_CHECK(config.Validate().ok());
}

Result<MiningReport> MhMiner::Mine(const RowStreamSource& source,
                                   double threshold) {
  if (threshold <= 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("threshold must lie in (0, 1]");
  }
  MiningReport report;

  // Phase 1: signature computation (single pass).
  SignatureMatrix signatures(1, 0);
  {
    ScopedPhase phase(&report.timers, kPhaseSignatures);
    MinHashGenerator generator(config_.min_hash);
    SANS_ASSIGN_OR_RETURN(std::unique_ptr<RowStream> stream, source.Open());
    SANS_ASSIGN_OR_RETURN(signatures, generator.Compute(stream.get()));
  }

  // Phase 2: candidate generation in main memory.
  CandidateSet candidates;
  {
    ScopedPhase phase(&report.timers, kPhaseCandidates);
    const int k = config_.min_hash.num_hashes;
    const int min_agreements = std::max(
        1,
        static_cast<int>(std::ceil((1.0 - config_.delta) * threshold * k)));
    switch (config_.candidates) {
      case MhCandidateAlgorithm::kRowSort: {
        RowSorter sorter(&signatures);
        candidates = sorter.Candidates(min_agreements);
        break;
      }
      case MhCandidateAlgorithm::kHashCount:
        candidates = HashCountMinHash(signatures, min_agreements);
        break;
    }
  }
  report.candidates = candidates.SortedPairs();
  report.num_candidates = report.candidates.size();

  // Phase 3: exact verification (second pass).
  {
    ScopedPhase phase(&report.timers, kPhaseVerify);
    SANS_ASSIGN_OR_RETURN(
        report.pairs,
        VerifyCandidates(source, report.candidates, threshold));
  }
  return report;
}

}  // namespace sans
