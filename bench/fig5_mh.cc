// Fig. 5 reproduction: quality and running time of the MH algorithm
// on the (simulated) Sun data as k and the similarity cutoff s* vary.
//   5a: S-curves sharpen as k grows.
//   5b: total running time grows linearly with k.
//   5c: S-curves shift right as s* grows.
//   5d: time decreases mildly with s* (fewer candidates).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/sweep.h"
#include "mine/mh_miner.h"

int main() {
  const sans::bench::WeblogBench bench = sans::bench::MakeWeblogBench();
  sans::InMemorySource source(&bench.dataset.matrix);

  const auto run = [&](int k, double threshold) {
    sans::MhMinerConfig config;
    config.min_hash.num_hashes = k;
    config.min_hash.seed = 11;
    config.delta = 0.25;
    sans::MhMiner miner(config);
    sans::SweepOptions options;
    options.threshold = threshold;
    options.scurve_floor = 0.1;
    auto result = sans::RunAndScore(miner, source, bench.truth, options);
    SANS_CHECK(result.ok());
    return std::move(result).value();
  };

  // --- 5a + 5b: k sweep at s* = 0.5. ---
  const int ks[] = {25, 50, 100, 200};
  std::vector<sans::SCurve> curves;
  std::vector<std::string> labels;
  sans::TablePrinter times({"k", "total(s)", "sig(s)", "cand(s)",
                            "verify(s)", "candidates", "FN", "FP(cand)"});
  for (int k : ks) {
    const sans::RunResult r = run(k, 0.5);
    curves.push_back(r.scurve);
    labels.push_back("k=" + std::to_string(k));
    times.AddRow({
        sans::TablePrinter::Int(k),
        sans::TablePrinter::Fixed(r.seconds(), 3),
        sans::TablePrinter::Fixed(r.report.timers.Total(sans::kPhaseSignatures), 3),
        sans::TablePrinter::Fixed(r.report.timers.Total(sans::kPhaseCandidates), 3),
        sans::TablePrinter::Fixed(r.report.timers.Total(sans::kPhaseVerify), 3),
        sans::TablePrinter::Int(r.report.num_candidates),
        sans::TablePrinter::Int(r.candidate_metrics.false_negatives),
        sans::TablePrinter::Int(r.candidate_metrics.false_positives),
    });
  }
  sans::bench::PrintSCurves(
      "=== Fig. 5a: MH S-curves vs k (s* = 0.5) — found/actual ratio "
      "per similarity bin ===",
      labels, curves);
  std::printf("\n=== Fig. 5b: MH running time vs k (expect ~linear "
              "growth) ===\n");
  times.Print(std::cout);

  // --- 5c + 5d: s* sweep at k = 100. ---
  const double cutoffs[] = {0.25, 0.5, 0.75};
  curves.clear();
  labels.clear();
  sans::TablePrinter cutoff_times(
      {"s*", "total(s)", "candidates", "pairs", "FN"});
  for (double s : cutoffs) {
    const sans::RunResult r = run(100, s);
    curves.push_back(r.scurve);
    labels.push_back("s*=" + sans::TablePrinter::Fixed(s, 2));
    cutoff_times.AddRow({
        sans::TablePrinter::Fixed(s, 2),
        sans::TablePrinter::Fixed(r.seconds(), 3),
        sans::TablePrinter::Int(r.report.num_candidates),
        sans::TablePrinter::Int(r.report.pairs.size()),
        sans::TablePrinter::Int(r.candidate_metrics.false_negatives),
    });
  }
  sans::bench::PrintSCurves(
      "=== Fig. 5c: MH S-curves vs similarity cutoff s* (k = 100) — "
      "curves shift right as s* grows ===",
      labels, curves);
  std::printf("\n=== Fig. 5d: MH running time vs s* (mild decrease: "
              "fewer candidates at higher cutoffs) ===\n");
  cutoff_times.Print(std::cout);
  return 0;
}
