// Fig. 7 reproduction: quality and running time of the H-LSH
// algorithm on the (simulated) Sun data as r (rows per sample) and l
// (runs) vary. Expected shapes:
//   7a: larger r -> fewer false positives, more false negatives.
//   7b: time grows with l (more runs, more candidates).
//   7c: time *decreases* with r — candidate checking dominates H-LSH,
//       and sharper keys mean fewer candidates.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/sweep.h"
#include "mine/hlsh_miner.h"

int main() {
  const sans::bench::WeblogBench bench = sans::bench::MakeWeblogBench();
  sans::InMemorySource source(&bench.dataset.matrix);

  const auto run = [&](int r, int l) {
    sans::HlshMinerConfig config;
    config.lsh.rows_per_run = r;
    config.lsh.num_runs = l;
    config.lsh.min_rows = 64;
    config.lsh.density_band = 4;  // the paper's t = 4
    config.lsh.seed = 17;
    sans::HlshMiner miner(config);
    sans::SweepOptions options;
    options.threshold = 0.5;
    options.scurve_floor = 0.1;
    auto result = sans::RunAndScore(miner, source, bench.truth, options);
    SANS_CHECK(result.ok());
    return std::move(result).value();
  };

  // --- 7a: r sweep at l = 4. ---
  const int rs[] = {4, 8, 16, 24};
  std::vector<sans::SCurve> curves;
  std::vector<std::string> labels;
  sans::TablePrinter r_table(
      {"r", "total(s)", "candidates", "FP(cand)", "FN"});
  for (int r : rs) {
    const sans::RunResult result = run(r, 4);
    curves.push_back(result.scurve);
    labels.push_back("r=" + std::to_string(r));
    r_table.AddRow({
        sans::TablePrinter::Int(r),
        sans::TablePrinter::Fixed(result.seconds(), 3),
        sans::TablePrinter::Int(result.report.num_candidates),
        sans::TablePrinter::Int(result.candidate_metrics.false_positives),
        sans::TablePrinter::Int(result.candidate_metrics.false_negatives),
    });
  }
  sans::bench::PrintSCurves(
      "=== Fig. 7a: H-LSH S-curves vs r (l = 4) — larger r drops false "
      "positives, raises false negatives ===",
      labels, curves);
  std::printf("\n=== Fig. 7c: H-LSH time vs r — decreasing: fewer "
              "candidates dominate the cost ===\n");
  r_table.Print(std::cout);

  // --- 7b: l sweep at r = 12. ---
  const int ls[] = {1, 2, 4, 8};
  curves.clear();
  labels.clear();
  sans::TablePrinter l_table(
      {"l", "total(s)", "candidates", "FP(cand)", "FN"});
  for (int l : ls) {
    const sans::RunResult result = run(12, l);
    curves.push_back(result.scurve);
    labels.push_back("l=" + std::to_string(l));
    l_table.AddRow({
        sans::TablePrinter::Int(l),
        sans::TablePrinter::Fixed(result.seconds(), 3),
        sans::TablePrinter::Int(result.report.num_candidates),
        sans::TablePrinter::Int(result.candidate_metrics.false_positives),
        sans::TablePrinter::Int(result.candidate_metrics.false_negatives),
    });
  }
  sans::bench::PrintSCurves(
      "=== Fig. 7a': H-LSH S-curves vs l (r = 12) — more runs recover "
      "false negatives ===",
      labels, curves);
  std::printf("\n=== Fig. 7b: H-LSH time vs l — increasing: more runs, "
              "more candidates ===\n");
  l_table.Print(std::cout);

  // --- ablation: the density band parameter t (paper fixes t=4). ---
  std::printf("\n=== ablation: density band t (paper: t = 4) ===\n");
  sans::TablePrinter t_table({"t", "total(s)", "candidates", "FN"});
  for (int t : {3, 4, 6, 8}) {
    sans::HlshMinerConfig config;
    config.lsh.rows_per_run = 12;
    config.lsh.num_runs = 4;
    config.lsh.min_rows = 64;
    config.lsh.density_band = t;
    config.lsh.seed = 17;
    sans::HlshMiner miner(config);
    sans::SweepOptions options;
    options.threshold = 0.5;
    auto result = sans::RunAndScore(miner, source, bench.truth, options);
    SANS_CHECK(result.ok());
    t_table.AddRow({
        sans::TablePrinter::Int(t),
        sans::TablePrinter::Fixed(result->seconds(), 3),
        sans::TablePrinter::Int(result->report.num_candidates),
        sans::TablePrinter::Int(result->candidate_metrics.false_negatives),
    });
  }
  t_table.Print(std::cout);
  return 0;
}
