// Fig. 4 (table) reproduction: running-time comparison of a-priori
// against MH, K-MH, H-LSH, and M-LSH on the news-article data at
// several support-pruning thresholds. The paper's observations to
// reproduce in shape:
//   * a-priori degrades (and eventually exhausts memory) as the
//     support threshold drops, while the hashing schemes are
//     indifferent to support;
//   * the LSH schemes are the fastest, min-hash schemes in between;
//   * all probabilistic schemes report the same pair set a-priori
//     reports on the support-pruned data.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <unordered_set>

#include "bench_common.h"
#include "data/news_generator.h"
#include "eval/table_printer.h"
#include "matrix/matrix_builder.h"
#include "matrix/row_stream.h"
#include "mine/apriori.h"
#include "mine/hlsh_miner.h"
#include "mine/kmh_miner.h"
#include "mine/mh_miner.h"
#include "mine/mlsh_miner.h"
#include "util/timer.h"

namespace {

/// Restricts the matrix to columns with support >= min_support,
/// mirroring the paper's preprocessing ("we do support pruning to
/// remove columns that have very few 1s"). Column ids are preserved
/// so pair sets stay comparable.
sans::BinaryMatrix SupportPrune(const sans::BinaryMatrix& matrix,
                                double min_support,
                                uint64_t* surviving_columns) {
  const uint64_t min_count = static_cast<uint64_t>(
      std::ceil(min_support * matrix.num_rows()));
  std::vector<uint8_t> keep(matrix.num_cols(), 0);
  *surviving_columns = 0;
  for (sans::ColumnId c = 0; c < matrix.num_cols(); ++c) {
    if (matrix.ColumnCardinality(c) >= min_count &&
        matrix.ColumnCardinality(c) > 0) {
      keep[c] = 1;
      ++*surviving_columns;
    }
  }
  sans::MatrixBuilder builder(matrix.num_rows(), matrix.num_cols());
  for (sans::RowId r = 0; r < matrix.num_rows(); ++r) {
    for (sans::ColumnId c : matrix.Row(r)) {
      if (keep[c]) SANS_CHECK(builder.Set(r, c).ok());
    }
  }
  auto pruned = std::move(builder).Build();
  SANS_CHECK(pruned.ok());
  return std::move(pruned).value();
}

std::unordered_set<sans::ColumnPair, sans::ColumnPairHash> PairSet(
    const std::vector<sans::SimilarPair>& pairs) {
  std::unordered_set<sans::ColumnPair, sans::ColumnPairHash> set;
  for (const auto& p : pairs) set.insert(p.pair);
  return set;
}

}  // namespace

int main() {
  sans::NewsConfig config;
  if (sans::bench::SmallScale()) {
    config.num_docs = 8'000;
    config.vocab_size = 2'000;
  } else {
    config.num_docs = 40'000;
    config.vocab_size = 8'000;
  }
  config.num_collocations = 16;
  config.collocation_docs = std::max<int>(8, config.num_docs / 2500);
  config.num_clusters = 2;
  config.seed = 77;
  auto dataset = sans::GenerateNews(config);
  SANS_CHECK(dataset.ok());
  std::fprintf(stderr, "[bench] news: %u docs x %u words, %llu ones\n",
               dataset->matrix.num_rows(), dataset->matrix.num_cols(),
               static_cast<unsigned long long>(dataset->matrix.num_ones()));

  const double threshold = 0.5;
  // The paper's thresholds: 0.01%, 0.015%, 0.2% of rows.
  const double supports[] = {0.0001, 0.00015, 0.002};

  sans::TablePrinter table({"support", "columns after pruning", "a-priori(s)",
                            "MH(s)", "K-MH(s)", "H-LSH(s)", "M-LSH(s)",
                            "pairs", "agree"});
  for (double support : supports) {
    uint64_t columns = 0;
    const sans::BinaryMatrix pruned =
        SupportPrune(dataset->matrix, support, &columns);
    sans::InMemorySource source(&pruned);

    // a-priori on the pruned data (support threshold already applied,
    // so run with a floor that keeps all surviving columns).
    sans::Stopwatch apriori_watch;
    auto apriori = sans::AprioriSimilarPairs(pruned, support, threshold);
    SANS_CHECK(apriori.ok());
    const double apriori_seconds = apriori_watch.ElapsedSeconds();
    const auto apriori_pairs = PairSet(apriori->pairs);

    sans::MhMinerConfig mh_config;
    mh_config.min_hash.num_hashes = 100;
    mh_config.min_hash.seed = 1;
    mh_config.delta = 0.4;
    sans::MhMiner mh(mh_config);
    auto mh_report = mh.Mine(source, threshold);
    SANS_CHECK(mh_report.ok());

    sans::KmhMinerConfig kmh_config;
    kmh_config.sketch.k = 100;
    kmh_config.sketch.seed = 2;
    kmh_config.hash_count_slack = 0.3;
    kmh_config.delta = 0.4;
    sans::KmhMiner kmh(kmh_config);
    auto kmh_report = kmh.Mine(source, threshold);
    SANS_CHECK(kmh_report.ok());

    sans::HlshMinerConfig hlsh_config;
    hlsh_config.lsh.rows_per_run = 12;
    hlsh_config.lsh.num_runs = 8;
    hlsh_config.lsh.min_rows = 64;
    hlsh_config.lsh.seed = 3;
    sans::HlshMiner hlsh(hlsh_config);
    auto hlsh_report = hlsh.Mine(source, threshold);
    SANS_CHECK(hlsh_report.ok());

    sans::MlshMinerConfig mlsh_config;
    mlsh_config.lsh.rows_per_band = 5;
    mlsh_config.lsh.num_bands = 20;
    mlsh_config.seed = 4;
    sans::MlshMiner mlsh(mlsh_config);
    auto mlsh_report = mlsh.Mine(source, threshold);
    SANS_CHECK(mlsh_report.ok());

    // "They report the same set of pairs as that reported by
    // a priori": MH (generous k) must match; the LSH schemes may drop
    // a few (tolerated false negatives) — report coverage.
    const auto mh_pairs = PairSet(mh_report->pairs);
    const bool mh_agrees = mh_pairs == apriori_pairs;

    char support_label[32];
    std::snprintf(support_label, sizeof(support_label), "%.3f%%",
                  support * 100.0);
    table.AddRow({
        support_label,
        sans::TablePrinter::Int(columns),
        sans::TablePrinter::Fixed(apriori_seconds, 3),
        sans::TablePrinter::Fixed(mh_report->TotalSeconds(), 3),
        sans::TablePrinter::Fixed(kmh_report->TotalSeconds(), 3),
        sans::TablePrinter::Fixed(hlsh_report->TotalSeconds(), 3),
        sans::TablePrinter::Fixed(mlsh_report->TotalSeconds(), 3),
        sans::TablePrinter::Int(apriori->pairs.size()),
        mh_agrees ? "yes" : "NO",
    });
  }
  std::printf("=== Fig. 4: running times, news data, similarity "
              "threshold %.2f ===\n",
              threshold);
  table.Print(std::cout);
  std::printf("\nNote: a-priori's pair-counting pass is the memory hog "
              "the paper describes; at the lowest support it counts "
              "every co-occurring pair of surviving columns.\n");
  return 0;
}
