// Shared scaffolding for the figure benches: the standard "Sun-like"
// web-log dataset (the paper runs Figs. 5-9 on the Sun data), cached
// brute-force ground truth, and S-curve rendering helpers.

#ifndef SANS_BENCH_BENCH_COMMON_H_
#define SANS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "data/weblog_generator.h"
#include "eval/metrics.h"
#include "eval/scurve.h"
#include "eval/table_printer.h"
#include "mine/brute_force.h"
#include "util/status.h"

namespace sans::bench {

/// The evaluation dataset shared by Figs. 5-9: a scaled Sun-like web
/// log. SANS_BENCH_SCALE=small shrinks it for smoke runs.
struct WeblogBench {
  WeblogDataset dataset;
  GroundTruth truth;
};

inline bool SmallScale() {
  const char* scale = std::getenv("SANS_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "small";
}

inline WeblogBench MakeWeblogBench() {
  WeblogConfig config;
  if (SmallScale()) {
    config.num_clients = 4'000;
    config.num_urls = 400;
    config.num_bundles = 15;
  } else {
    // The paper's Sun data: ~13,000 URLs x 0.2M client IPs.
    config.num_clients = 200'000;
    config.num_urls = 13'000;
    config.num_bundles = 400;
  }
  config.seed = 2000;
  auto dataset = GenerateWeblog(config);
  SANS_CHECK(dataset.ok());
  auto pairs = BruteForceAllNonzeroPairs(dataset->matrix);
  SANS_CHECK(pairs.ok());
  std::fprintf(stderr,
               "[bench] weblog: %u clients x %u urls, %llu ones, "
               "%zu nonzero pairs\n",
               dataset->matrix.num_rows(), dataset->matrix.num_cols(),
               static_cast<unsigned long long>(dataset->matrix.num_ones()),
               pairs->size());
  return WeblogBench{std::move(dataset).value(), GroundTruth(*pairs)};
}

/// One timed phase measurement for the machine-readable bench output.
struct BenchPhaseResult {
  std::string phase;
  int threads = 1;
  double seconds = 0.0;
  /// Input rows divided by seconds (nominal for the in-memory
  /// candidate-generation phase, which scans columns, not rows).
  double rows_per_sec = 0.0;
  double speedup_vs_1_thread = 1.0;
  /// When false, the speedup field is emitted as JSON null — a bench
  /// must refuse to report a speedup it could not measure (e.g. a
  /// single-hardware-thread host cannot time real parallelism).
  bool has_speedup = true;
  /// JSON key for the speedup field; benches comparing against a
  /// reference implementation rather than a thread count override it.
  std::string speedup_key = "speedup_vs_1_thread";
};

inline std::string JsonNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

/// Writes a BENCH_<name>.json document: flat context key/values (raw
/// JSON fragments, so quote strings yourself) plus one record per
/// phase × thread-count measurement. Keys and phase names must be
/// plain identifiers (no escaping is performed).
inline void WriteBenchJson(
    const std::string& path, const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& context,
    const std::vector<BenchPhaseResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  SANS_CHECK(f != nullptr);
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name.c_str());
  for (const auto& [key, value] : context) {
    std::fprintf(f, "  \"%s\": %s,\n", key.c_str(), value.c_str());
  }
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchPhaseResult& r = results[i];
    const std::string speedup =
        r.has_speedup ? JsonNumber(r.speedup_vs_1_thread) : "null";
    std::fprintf(f,
                 "    {\"phase\": \"%s\", \"threads\": %d, "
                 "\"seconds\": %s, \"rows_per_sec\": %s, "
                 "\"%s\": %s}%s\n",
                 r.phase.c_str(), r.threads, JsonNumber(r.seconds).c_str(),
                 JsonNumber(r.rows_per_sec).c_str(), r.speedup_key.c_str(),
                 speedup.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  SANS_CHECK_EQ(std::fclose(f), 0);
}

/// Renders one S-curve as a table column block: ratio per bin.
inline void PrintSCurves(const std::string& title,
                         const std::vector<std::string>& labels,
                         const std::vector<SCurve>& curves) {
  SANS_CHECK(!curves.empty());
  SANS_CHECK_EQ(labels.size(), curves.size());
  std::printf("\n%s\n", title.c_str());
  std::vector<std::string> headers = {"similarity", "actual"};
  for (const std::string& label : labels) headers.push_back(label);
  TablePrinter table(headers);
  const SCurve& first = curves[0];
  for (size_t bin = 0; bin < first.bin_center.size(); ++bin) {
    if (first.actual[bin] == 0) continue;
    std::vector<std::string> row = {
        TablePrinter::Fixed(first.bin_center[bin], 3),
        TablePrinter::Int(first.actual[bin])};
    for (const SCurve& curve : curves) {
      row.push_back(curve.actual[bin] == 0
                        ? std::string("-")
                        : TablePrinter::Fixed(curve.Ratio(bin), 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}

}  // namespace sans::bench

#endif  // SANS_BENCH_BENCH_COMMON_H_
