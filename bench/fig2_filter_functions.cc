// Fig. 2 reproduction: (a) the banded filter P_{r,l}(s) sharpening
// toward a unit step as r = l grows; (b) the sampled approximation
// Q_{20,20,40}(s) tracking P_{20,20}(s) with only 40 min-hash values.

#include <cstdio>
#include <iostream>

#include "eval/table_printer.h"
#include "lsh/filter_functions.h"

int main() {
  std::printf("=== Fig. 2a: P_{r,l}(s) = 1 - (1 - s^r)^l, r = l ===\n");
  {
    sans::TablePrinter table(
        {"s", "P_{3,3}", "P_{5,5}", "P_{10,10}", "P_{20,20}", "P_{40,40}"});
    for (int step = 0; step <= 20; ++step) {
      const double s = step / 20.0;
      table.AddRow({
          sans::TablePrinter::Fixed(s, 2),
          sans::TablePrinter::Fixed(sans::BandCollisionProbability(s, 3, 3),
                                    4),
          sans::TablePrinter::Fixed(sans::BandCollisionProbability(s, 5, 5),
                                    4),
          sans::TablePrinter::Fixed(
              sans::BandCollisionProbability(s, 10, 10), 4),
          sans::TablePrinter::Fixed(
              sans::BandCollisionProbability(s, 20, 20), 4),
          sans::TablePrinter::Fixed(
              sans::BandCollisionProbability(s, 40, 40), 4),
      });
    }
    table.Print(std::cout);
    std::printf("effective thresholds (P = 1/2): r=l=3: %.3f  r=l=20: "
                "%.3f  r=l=40: %.3f\n",
                sans::BandThreshold(3, 3), sans::BandThreshold(20, 20),
                sans::BandThreshold(40, 40));
  }

  std::printf("\n=== Fig. 2b: Q_{20,20,40} approximating P_{20,20} "
              "(only 40 min-hash values vs 400) ===\n");
  {
    sans::TablePrinter table(
        {"s", "P_{20,20}", "Q_{20,20,40}", "Q_{20,20,100}",
         "Q_{20,20,400}"});
    double max_err_40 = 0.0;
    double max_err_400 = 0.0;
    for (int step = 0; step <= 20; ++step) {
      const double s = step / 20.0;
      const double p = sans::BandCollisionProbability(s, 20, 20);
      const double q40 =
          sans::SampledBandCollisionProbability(s, 20, 20, 40);
      const double q100 =
          sans::SampledBandCollisionProbability(s, 20, 20, 100);
      const double q400 =
          sans::SampledBandCollisionProbability(s, 20, 20, 400);
      max_err_40 = std::max(max_err_40, std::abs(q40 - p));
      max_err_400 = std::max(max_err_400, std::abs(q400 - p));
      table.AddRow({
          sans::TablePrinter::Fixed(s, 2),
          sans::TablePrinter::Fixed(p, 4),
          sans::TablePrinter::Fixed(q40, 4),
          sans::TablePrinter::Fixed(q100, 4),
          sans::TablePrinter::Fixed(q400, 4),
      });
    }
    table.Print(std::cout);
    std::printf("max |Q - P|: k=40: %.4f, k=400: %.4f (Q converges to P "
                "as k grows; P is always sharper)\n",
                max_err_40, max_err_400);
  }
  return 0;
}
