// Fig. 9 reproduction: head-to-head comparison of MH, K-MH, M-LSH,
// and H-LSH. For each tolerated false-negative percentage, each
// algorithm runs over its parameter grid; the cheapest configuration
// meeting the tolerance is reported (total time and candidate false
// positives). Expected shapes from the paper:
//   * M-LSH gives the best overall time; H-LSH is competitive only at
//     high FN tolerance;
//   * MH/K-MH are slower but their FP counts are not monotone in the
//     tolerance (the k vs cutoff trade-off);
//   * LSH FP counts fall as the tolerance rises (fewer repetitions).

#include <cstdio>
#include <iostream>
#include <optional>

#include "bench_common.h"
#include "eval/sweep.h"
#include "mine/hlsh_miner.h"
#include "mine/kmh_miner.h"
#include "mine/mh_miner.h"
#include "mine/mlsh_miner.h"

namespace {

struct GridPoint {
  std::string params;
  double seconds = 0.0;
  uint64_t false_positives = 0;
  double fn_rate = 0.0;
};

}  // namespace

int main() {
  const sans::bench::WeblogBench bench = sans::bench::MakeWeblogBench();
  sans::InMemorySource source(&bench.dataset.matrix);
  const double threshold = 0.5;
  const uint64_t total_true = bench.truth.CountAtOrAbove(threshold);
  std::fprintf(stderr, "[bench] %llu true pairs at s* = %.2f\n",
               static_cast<unsigned long long>(total_true), threshold);

  sans::SweepOptions options;
  options.threshold = threshold;

  const auto score = [&](sans::Miner& miner,
                         const std::string& params) -> GridPoint {
    auto result = sans::RunAndScore(miner, source, bench.truth, options);
    SANS_CHECK(result.ok());
    GridPoint point;
    point.params = params;
    point.seconds = result->seconds();
    point.false_positives = result->candidate_metrics.false_positives;
    point.fn_rate =
        total_true == 0
            ? 0.0
            : static_cast<double>(
                  result->candidate_metrics.false_negatives) /
                  static_cast<double>(total_true);
    return point;
  };

  // Parameter grids (one mining run each; selection reuses them).
  std::vector<GridPoint> mh_grid;
  for (int k : {25, 50, 100, 200}) {
    for (double delta : {0.1, 0.3, 0.5}) {
      sans::MhMinerConfig config;
      config.min_hash.num_hashes = k;
      config.min_hash.seed = 23;
      config.delta = delta;
      sans::MhMiner miner(config);
      mh_grid.push_back(score(miner, "k=" + std::to_string(k) + ",d=" +
                                        sans::TablePrinter::Fixed(delta, 1)));
    }
  }
  std::vector<GridPoint> kmh_grid;
  for (int k : {25, 50, 100, 200}) {
    for (double delta : {0.1, 0.3, 0.5}) {
      sans::KmhMinerConfig config;
      config.sketch.k = k;
      config.sketch.seed = 29;
      config.hash_count_slack = 0.4;
      config.delta = delta;
      sans::KmhMiner miner(config);
      kmh_grid.push_back(score(miner,
                               "k=" + std::to_string(k) + ",d=" +
                                   sans::TablePrinter::Fixed(delta, 1)));
    }
  }
  std::vector<GridPoint> mlsh_grid;
  for (int r : {3, 5, 8}) {
    for (int l : {5, 10, 20, 40}) {
      sans::MlshMinerConfig config;
      config.lsh.rows_per_band = r;
      config.lsh.num_bands = l;
      config.seed = 31;
      sans::MlshMiner miner(config);
      mlsh_grid.push_back(score(
          miner, "r=" + std::to_string(r) + ",l=" + std::to_string(l)));
    }
  }
  std::vector<GridPoint> hlsh_grid;
  for (int r : {8, 12, 16}) {
    for (int l : {2, 4, 8}) {
      sans::HlshMinerConfig config;
      config.lsh.rows_per_run = r;
      config.lsh.num_runs = l;
      config.lsh.min_rows = 64;
      config.lsh.seed = 37;
      sans::HlshMiner miner(config);
      hlsh_grid.push_back(score(
          miner, "r=" + std::to_string(r) + ",l=" + std::to_string(l)));
    }
  }

  const auto best_under = [](const std::vector<GridPoint>& grid,
                             double fn_tolerance)
      -> std::optional<GridPoint> {
    std::optional<GridPoint> best;
    for (const GridPoint& point : grid) {
      if (point.fn_rate > fn_tolerance) continue;
      if (!best || point.seconds < best->seconds) best = point;
    }
    return best;
  };

  const double tolerances[] = {0.01, 0.02, 0.05, 0.10, 0.20};
  sans::TablePrinter time_table({"FN tol", "MH(s)", "K-MH(s)", "M-LSH(s)",
                                 "H-LSH(s)", "MH params", "M-LSH params"});
  sans::TablePrinter fp_table(
      {"FN tol", "MH FP", "K-MH FP", "M-LSH FP", "H-LSH FP"});
  for (double tol : tolerances) {
    const auto mh = best_under(mh_grid, tol);
    const auto kmh = best_under(kmh_grid, tol);
    const auto mlsh = best_under(mlsh_grid, tol);
    const auto hlsh = best_under(hlsh_grid, tol);
    const auto fmt_time = [](const std::optional<GridPoint>& p) {
      return p ? sans::TablePrinter::Fixed(p->seconds, 3)
               : std::string("infeasible");
    };
    const auto fmt_fp = [](const std::optional<GridPoint>& p) {
      return p ? sans::TablePrinter::Int(p->false_positives)
               : std::string("-");
    };
    time_table.AddRow({
        sans::TablePrinter::Fixed(tol * 100, 0) + "%",
        fmt_time(mh),
        fmt_time(kmh),
        fmt_time(mlsh),
        fmt_time(hlsh),
        mh ? mh->params : "-",
        mlsh ? mlsh->params : "-",
    });
    fp_table.AddRow({
        sans::TablePrinter::Fixed(tol * 100, 0) + "%",
        fmt_fp(mh),
        fmt_fp(kmh),
        fmt_fp(mlsh),
        fmt_fp(hlsh),
    });
  }
  std::printf("=== Fig. 9a/9c: minimum total time meeting each "
              "false-negative tolerance ===\n");
  time_table.Print(std::cout);
  std::printf("\n=== Fig. 9b/9d: candidate false positives of the "
              "selected configurations (log-scale in the paper) ===\n");
  fp_table.Print(std::cout);
  return 0;
}
