// Benchmark of the block-pipelined parallel execution engine on a
// disk-resident table: generates a weblog dataset, writes it as a
// .sans table file, then times every pipeline phase at 1, 2, 4 and 8
// threads reading that file through TableFileSource. Emits
// BENCH_parallel.json (see bench_common.h) with seconds, rows/sec and
// speedup-vs-1-thread per phase, plus a human-readable table.
//
// SANS_BENCH_SCALE=small shrinks the table for smoke runs (CI and the
// TSan job); the default scale is a >=1M-row table so the single-scan
// reader's I/O advantage is visible. Speedups above 1 require real
// cores: on a 1-core host every thread count measures the same
// hardware and the numbers only validate overhead, not scaling.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "candgen/hash_count.h"
#include "data/weblog_generator.h"
#include "matrix/table_file.h"
#include "mine/parallel.h"
#include "util/timer.h"

namespace sans {
namespace {

struct PhaseTimes {
  double signatures = 0.0;
  double candidates = 0.0;
  double verify = 0.0;
  double Total() const { return signatures + candidates + verify; }
};

PhaseTimes RunOnce(const TableFileSource& source, int threads) {
  ExecutionConfig execution;
  execution.num_threads = threads;
  std::unique_ptr<ThreadPool> pool = MaybeCreatePool(execution);

  MinHashConfig mh;
  mh.num_hashes = 48;
  mh.seed = 12;

  PhaseTimes times;
  Stopwatch sig_watch;
  auto signatures =
      ComputeMinHashParallel(source, mh, execution, pool.get());
  SANS_CHECK(signatures.ok());
  times.signatures = sig_watch.ElapsedSeconds();

  Stopwatch cand_watch;
  auto candidates =
      HashCountMinHashParallel(*signatures, mh.num_hashes / 3, pool.get());
  SANS_CHECK(candidates.ok());
  times.candidates = cand_watch.ElapsedSeconds();

  Stopwatch verify_watch;
  auto verified = VerifyCandidatesParallel(source, candidates->SortedPairs(),
                                           0.2, execution, pool.get());
  SANS_CHECK(verified.ok());
  times.verify = verify_watch.ElapsedSeconds();

  std::fprintf(stderr,
               "[bench] threads=%d signatures=%.2fs candgen=%.2fs "
               "(%zu candidates) verify=%.2fs (%zu pairs)\n",
               threads, times.signatures, times.candidates,
               candidates->size(), times.verify, verified->size());
  return times;
}

int Main() {
  WeblogConfig config;
  if (bench::SmallScale()) {
    config.num_clients = 20'000;
    config.num_urls = 500;
    config.num_bundles = 20;
  } else {
    config.num_clients = 1'000'000;
    config.num_urls = 4'000;
    config.num_bundles = 120;
  }
  config.seed = 3;
  auto dataset = GenerateWeblog(config);
  SANS_CHECK(dataset.ok());

  const std::filesystem::path table_path =
      std::filesystem::temp_directory_path() / "sans_bench_parallel.sans";
  SANS_CHECK(WriteTableFile(dataset->matrix, table_path.string()).ok());
  const RowId num_rows = dataset->matrix.num_rows();
  const ColumnId num_cols = dataset->matrix.num_cols();
  std::fprintf(stderr, "[bench] table: %u rows x %u cols, %.1f MB on disk\n",
               num_rows, num_cols,
               static_cast<double>(std::filesystem::file_size(table_path)) /
                   1e6);
  // Free the in-memory copy: the measured scans go through the file.
  dataset.value().matrix = BinaryMatrix(0, 0);

  auto source = TableFileSource::Create(table_path.string());
  SANS_CHECK(source.ok());

  // A 1-hardware-thread host runs every "parallel" configuration on
  // the same core, so a speedup number would be fiction (it can only
  // measure scheduling overhead). Refuse to report one: emit null.
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const bool can_measure_speedup = hardware_threads > 1;
  if (!can_measure_speedup) {
    std::fprintf(stderr,
                 "[bench] WARNING: hardware_threads=%u; speedup cannot be "
                 "measured on a single-core host, emitting null\n",
                 hardware_threads);
  }

  const int kThreadCounts[] = {1, 2, 4, 8};
  std::vector<bench::BenchPhaseResult> results;
  PhaseTimes reference;
  for (int threads : kThreadCounts) {
    const PhaseTimes times = RunOnce(*source, threads);
    if (threads == 1) reference = times;
    const auto emit = [&](const char* phase, double seconds,
                          double reference_seconds) {
      bench::BenchPhaseResult r;
      r.phase = phase;
      r.threads = threads;
      r.seconds = seconds;
      r.rows_per_sec = seconds > 0 ? num_rows / seconds : 0.0;
      r.has_speedup = can_measure_speedup;
      r.speedup_vs_1_thread =
          can_measure_speedup && seconds > 0 ? reference_seconds / seconds
                                             : 0.0;
      results.push_back(r);
    };
    emit("signatures", times.signatures, reference.signatures);
    emit("candidates", times.candidates, reference.candidates);
    emit("verify", times.verify, reference.verify);
    emit("total", times.Total(), reference.Total());
  }

  bench::WriteBenchJson(
      "BENCH_parallel.json", "parallel",
      {{"rows", bench::JsonNumber(num_rows)},
       {"cols", bench::JsonNumber(num_cols)},
       {"hardware_threads", bench::JsonNumber(hardware_threads)},
       {"scale", bench::SmallScale() ? "\"small\"" : "\"full\""}},
      results);

  std::printf("\n%-12s %8s %10s %14s %10s\n", "phase", "threads", "seconds",
              "rows/sec", "speedup");
  for (const bench::BenchPhaseResult& r : results) {
    if (r.has_speedup) {
      std::printf("%-12s %8d %10.3f %14.0f %9.2fx\n", r.phase.c_str(),
                  r.threads, r.seconds, r.rows_per_sec,
                  r.speedup_vs_1_thread);
    } else {
      std::printf("%-12s %8d %10.3f %14.0f %10s\n", r.phase.c_str(),
                  r.threads, r.seconds, r.rows_per_sec, "n/a");
    }
  }
  std::printf("\nwrote BENCH_parallel.json\n");

  std::filesystem::remove(table_path);
  return 0;
}

}  // namespace
}  // namespace sans

int main() { return sans::Main(); }
