// Micro-benchmark (google-benchmark) of the parallel pipeline paths:
// min-hash signature computation and candidate verification at 1-8
// worker threads. The speedup on the hashing-bound signature phase is
// near-linear; the verification phase saturates earlier (it is
// memory-bound on the candidate index).

#include <benchmark/benchmark.h>

#include "data/weblog_generator.h"
#include "matrix/row_stream.h"
#include "mine/parallel.h"

namespace sans {
namespace {

const WeblogDataset& BenchData() {
  static const WeblogDataset* data = [] {
    WeblogConfig config;
    config.num_clients = 50'000;
    config.num_urls = 2'000;
    config.num_bundles = 60;
    config.seed = 3;
    auto d = GenerateWeblog(config);
    SANS_CHECK(d.ok());
    return new WeblogDataset(std::move(d).value());
  }();
  return *data;
}

void BM_ParallelMinHash(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  InMemorySource source(&BenchData().matrix);
  MinHashConfig config;
  config.num_hashes = 96;
  config.seed = 1;
  for (auto _ : state) {
    auto signatures = ComputeMinHashParallel(source, config, threads);
    SANS_CHECK(signatures.ok());
    benchmark::DoNotOptimize(signatures);
  }
  state.SetItemsProcessed(state.iterations() *
                          BenchData().matrix.num_ones());
}
BENCHMARK(BM_ParallelMinHash)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelVerify(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const BinaryMatrix& matrix = BenchData().matrix;
  InMemorySource source(&matrix);
  // Candidate list: every adjacent column pair.
  std::vector<ColumnPair> candidates;
  for (ColumnId c = 0; c + 1 < matrix.num_cols(); ++c) {
    candidates.push_back(ColumnPair(c, c + 1));
  }
  for (auto _ : state) {
    auto verified =
        CountCandidatePairsParallel(source, candidates, threads);
    SANS_CHECK(verified.ok());
    benchmark::DoNotOptimize(verified);
  }
  state.SetItemsProcessed(state.iterations() * candidates.size());
}
BENCHMARK(BM_ParallelVerify)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace sans

BENCHMARK_MAIN();
