// Micro-benchmarks (google-benchmark) of the hashing substrate: raw
// hash throughput per family and min-hash signature generation cost —
// the ablation DESIGN.md calls out for tabulation vs multiply-shift.

#include <benchmark/benchmark.h>

#include "data/synthetic_generator.h"
#include "matrix/row_stream.h"
#include "sketch/k_min_hash.h"
#include "sketch/min_hash.h"
#include "util/hashing.h"

namespace sans {
namespace {

template <typename HasherT>
void BM_HashThroughput(benchmark::State& state) {
  HasherT hasher(42);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Hash(key++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashThroughput<SplitMix64Hasher>);
BENCHMARK(BM_HashThroughput<MultiplyShiftHasher>);
BENCHMARK(BM_HashThroughput<TabulationHasher>);

const BinaryMatrix& BenchMatrix() {
  static const BinaryMatrix* matrix = [] {
    SyntheticConfig config;
    config.num_rows = 20'000;
    config.num_cols = 500;
    config.bands = {{5, 60.0, 90.0}};
    config.min_density = 0.01;
    config.max_density = 0.03;
    config.seed = 7;
    auto dataset = GenerateSynthetic(config);
    SANS_CHECK(dataset.ok());
    return new BinaryMatrix(std::move(dataset->matrix));
  }();
  return *matrix;
}

void BM_MinHashSignatures(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const HashFamily family = static_cast<HashFamily>(state.range(1));
  MinHashConfig config;
  config.num_hashes = k;
  config.family = family;
  config.seed = 3;
  MinHashGenerator generator(config);
  for (auto _ : state) {
    InMemoryRowStream stream(&BenchMatrix());
    auto signatures = generator.Compute(&stream);
    benchmark::DoNotOptimize(signatures);
  }
  state.SetItemsProcessed(state.iterations() * BenchMatrix().num_ones());
}
BENCHMARK(BM_MinHashSignatures)
    ->ArgsProduct({{16, 64, 128},
                   {static_cast<int>(HashFamily::kSplitMix64),
                    static_cast<int>(HashFamily::kMultiplyShift),
                    static_cast<int>(HashFamily::kTabulation)}});

void BM_KMinHashSketch(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  KMinHashConfig config;
  config.k = k;
  config.seed = 5;
  KMinHashGenerator generator(config);
  for (auto _ : state) {
    InMemoryRowStream stream(&BenchMatrix());
    auto sketch = generator.Compute(&stream);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(state.iterations() * BenchMatrix().num_ones());
}
BENCHMARK(BM_KMinHashSketch)->Arg(16)->Arg(64)->Arg(128)->Arg(512);

}  // namespace
}  // namespace sans

BENCHMARK_MAIN();
