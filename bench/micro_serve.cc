// Benchmark of the online similarity query service: builds a
// persistent index over a news-style corpus, starts a real TCP server
// on an ephemeral loopback port at 1, 2, 4 and 8 worker threads, and
// drives it with matching client threads issuing TopK and
// PairSimilarity RPCs. Emits BENCH_serve.json with queries/sec (in
// the rows_per_sec field) plus the server-side p50/p99 latency per
// thread count, and a human-readable table.
//
// SANS_BENCH_SCALE=small shrinks the corpus and query count for smoke
// runs. As with micro_parallel, thread counts above the core count
// only validate overhead: on a 1-core host every configuration
// measures the same hardware.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/news_generator.h"
#include "matrix/row_stream.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/similarity_index.h"
#include "util/timer.h"

namespace sans {
namespace {

struct RunResult {
  double topk_seconds = 0.0;
  double pair_seconds = 0.0;
  int topk_queries = 0;
  int pair_queries = 0;
  ServerStatsSnapshot stats;
};

/// One benchmark run: a fresh server at `threads` workers, matching
/// client threads, `queries` TopK then `queries` PairSimilarity RPCs
/// split evenly across the clients.
RunResult RunOnce(std::shared_ptr<const SimilarityIndex> index, int threads,
                  int queries) {
  ServerConfig server_config;
  server_config.num_threads = threads;
  server_config.poll_interval_ms = 20;
  auto server = Server::Start(index, server_config);
  SANS_CHECK(server.ok());

  ClientConfig client_config;
  client_config.port = (*server)->port();
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < threads; ++i) {
    auto client = Client::Connect(client_config);
    SANS_CHECK(client.ok());
    clients.push_back(std::move(*client));
  }

  const ColumnId num_cols = index->num_cols();
  const int per_client = queries / threads;
  RunResult result;
  result.topk_queries = per_client * threads;
  result.pair_queries = per_client * threads;

  const auto drive = [&](const auto& body) {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] { body(*clients[t], t); });
    }
    for (std::thread& w : workers) w.join();
  };

  Stopwatch topk_watch;
  drive([&](Client& client, int t) {
    for (int i = 0; i < per_client; ++i) {
      const ColumnId col = static_cast<ColumnId>(
          (static_cast<size_t>(t) * per_client + i) % num_cols);
      auto neighbors = client.TopK(col, 8);
      SANS_CHECK(neighbors.ok());
    }
  });
  result.topk_seconds = topk_watch.ElapsedSeconds();

  Stopwatch pair_watch;
  drive([&](Client& client, int t) {
    for (int i = 0; i < per_client; ++i) {
      const size_t q = static_cast<size_t>(t) * per_client + i;
      const ColumnId a = static_cast<ColumnId>(q % num_cols);
      const ColumnId b = static_cast<ColumnId>((q * 7 + 1) % num_cols);
      auto similarity = client.PairSimilarity(a, b);
      SANS_CHECK(similarity.ok());
    }
  });
  result.pair_seconds = pair_watch.ElapsedSeconds();

  result.stats = (*server)->Stats();
  SANS_CHECK_EQ(result.stats.errors, 0u);
  clients.clear();
  (*server)->Stop();

  std::fprintf(stderr,
               "[bench] threads=%d topk=%.2fs (%d queries) pair=%.2fs "
               "(%d queries) p50=%.0fus p99=%.0fus\n",
               threads, result.topk_seconds, result.topk_queries,
               result.pair_seconds, result.pair_queries,
               result.stats.p50_seconds * 1e6,
               result.stats.p99_seconds * 1e6);
  return result;
}

int Main() {
  NewsConfig config;
  if (bench::SmallScale()) {
    config.num_docs = 4'000;
    config.vocab_size = 1'000;
  } else {
    // 1M-row index: queries only touch sketches and buckets, so the
    // row count exercises the build path and file size, not latency.
    config.num_docs = 1'000'000;
    config.vocab_size = 5'000;
    config.num_collocations = 64;
    config.collocation_docs = 500;
  }
  config.seed = 17;
  auto dataset = GenerateNews(config);
  SANS_CHECK(dataset.ok());
  const int queries = bench::SmallScale() ? 400 : 4'000;

  SimilarityIndexConfig index_config;
  index_config.sketch_k = 256;
  index_config.rows_per_band = 4;
  index_config.num_bands = 16;
  index_config.seed = 17;
  const std::filesystem::path index_path =
      std::filesystem::temp_directory_path() / "sans_bench_serve.sidx";

  Stopwatch build_watch;
  SANS_CHECK(IndexBuilder(index_config)
                 .Build(InMemorySource(&dataset->matrix), index_path.string())
                 .ok());
  const double build_seconds = build_watch.ElapsedSeconds();
  std::fprintf(stderr, "[bench] index: %u cols, %.1f KB, built in %.2fs\n",
               dataset->matrix.num_cols(),
               static_cast<double>(std::filesystem::file_size(index_path)) /
                   1e3,
               build_seconds);

  auto loaded = SimilarityIndex::Load(index_path.string());
  SANS_CHECK(loaded.ok());
  auto index = std::make_shared<const SimilarityIndex>(std::move(*loaded));
  const RowId num_rows = dataset->matrix.num_rows();
  const ColumnId num_cols = dataset->matrix.num_cols();
  // Queries go through the loaded index; drop the matrix.
  dataset.value().matrix = BinaryMatrix(0, 0);

  const int kThreadCounts[] = {1, 2, 4, 8};
  std::vector<bench::BenchPhaseResult> results;
  RunResult reference;
  for (int threads : kThreadCounts) {
    const RunResult run = RunOnce(index, threads, queries);
    if (threads == 1) reference = run;
    const auto emit = [&](const char* phase, double seconds, double qps,
                          double reference_seconds) {
      bench::BenchPhaseResult r;
      r.phase = phase;
      r.threads = threads;
      r.seconds = seconds;
      r.rows_per_sec = qps;  // queries/sec for the RPC phases
      r.speedup_vs_1_thread =
          seconds > 0 ? reference_seconds / seconds : 0.0;
      results.push_back(r);
    };
    emit("topk", run.topk_seconds,
         run.topk_seconds > 0 ? run.topk_queries / run.topk_seconds : 0.0,
         reference.topk_seconds);
    emit("pair", run.pair_seconds,
         run.pair_seconds > 0 ? run.pair_queries / run.pair_seconds : 0.0,
         reference.pair_seconds);
    emit("p50_latency", run.stats.p50_seconds, 0.0,
         reference.stats.p50_seconds);
    emit("p99_latency", run.stats.p99_seconds, 0.0,
         reference.stats.p99_seconds);
  }

  bench::WriteBenchJson(
      "BENCH_serve.json", "serve",
      {{"rows", bench::JsonNumber(num_rows)},
       {"cols", bench::JsonNumber(num_cols)},
       {"sketch_k", bench::JsonNumber(index_config.sketch_k)},
       {"rows_per_band", bench::JsonNumber(index_config.rows_per_band)},
       {"num_bands", bench::JsonNumber(index_config.num_bands)},
       {"queries_per_phase", bench::JsonNumber(queries)},
       {"index_build_seconds", bench::JsonNumber(build_seconds)},
       {"hardware_threads",
        bench::JsonNumber(std::thread::hardware_concurrency())},
       {"scale", bench::SmallScale() ? "\"small\"" : "\"full\""}},
      results);

  std::printf("\n%-12s %8s %10s %14s %10s\n", "phase", "threads", "seconds",
              "queries/sec", "speedup");
  for (const bench::BenchPhaseResult& r : results) {
    std::printf("%-12s %8d %10.4f %14.0f %9.2fx\n", r.phase.c_str(),
                r.threads, r.seconds, r.rows_per_sec,
                r.speedup_vs_1_thread);
  }
  std::printf("\nwrote BENCH_serve.json\n");

  std::filesystem::remove(index_path);
  return 0;
}

}  // namespace
}  // namespace sans

int main() { return sans::Main(); }
