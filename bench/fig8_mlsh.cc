// Fig. 8 reproduction: quality and running time of the M-LSH
// algorithm on the (simulated) Sun data as r (rows per band) and l
// (bands) vary. Expected shapes:
//   8a: larger r -> fewer false positives, more false negatives.
//   8b: time grows with l (more hashing repetitions and candidates).
//   8c: min-hash extraction dominates, so time grows ~linearly in
//       k = r·l as r grows at fixed l.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/sweep.h"
#include "mine/mlsh_miner.h"

int main() {
  const sans::bench::WeblogBench bench = sans::bench::MakeWeblogBench();
  sans::InMemorySource source(&bench.dataset.matrix);

  const auto run = [&](int r, int l) {
    sans::MlshMinerConfig config;
    config.lsh.rows_per_band = r;
    config.lsh.num_bands = l;
    config.seed = 19;
    sans::MlshMiner miner(config);
    sans::SweepOptions options;
    options.threshold = 0.5;
    options.scurve_floor = 0.1;
    auto result = sans::RunAndScore(miner, source, bench.truth, options);
    SANS_CHECK(result.ok());
    return std::move(result).value();
  };

  // --- 8a + 8c: r sweep at l = 10. ---
  const int rs[] = {3, 5, 10, 15};
  std::vector<sans::SCurve> curves;
  std::vector<std::string> labels;
  sans::TablePrinter r_table({"r", "k=r*l", "total(s)", "sig(s)",
                              "candidates", "FP(cand)", "FN"});
  for (int r : rs) {
    const sans::RunResult result = run(r, 10);
    curves.push_back(result.scurve);
    labels.push_back("r=" + std::to_string(r));
    r_table.AddRow({
        sans::TablePrinter::Int(r),
        sans::TablePrinter::Int(r * 10),
        sans::TablePrinter::Fixed(result.seconds(), 3),
        sans::TablePrinter::Fixed(
            result.report.timers.Total(sans::kPhaseSignatures), 3),
        sans::TablePrinter::Int(result.report.num_candidates),
        sans::TablePrinter::Int(result.candidate_metrics.false_positives),
        sans::TablePrinter::Int(result.candidate_metrics.false_negatives),
    });
  }
  sans::bench::PrintSCurves(
      "=== Fig. 8a: M-LSH S-curves vs r (l = 10) — larger r sharpens "
      "the filter ===",
      labels, curves);
  std::printf("\n=== Fig. 8c: M-LSH time vs r — min-hash extraction "
              "dominates, ~linear in k = r*l ===\n");
  r_table.Print(std::cout);

  // --- 8b: l sweep at r = 5. ---
  const int ls[] = {2, 5, 10, 20};
  curves.clear();
  labels.clear();
  sans::TablePrinter l_table({"l", "k=r*l", "total(s)", "candidates",
                              "FP(cand)", "FN"});
  for (int l : ls) {
    const sans::RunResult result = run(5, l);
    curves.push_back(result.scurve);
    labels.push_back("l=" + std::to_string(l));
    l_table.AddRow({
        sans::TablePrinter::Int(l),
        sans::TablePrinter::Int(5 * l),
        sans::TablePrinter::Fixed(result.seconds(), 3),
        sans::TablePrinter::Int(result.report.num_candidates),
        sans::TablePrinter::Int(result.candidate_metrics.false_positives),
        sans::TablePrinter::Int(result.candidate_metrics.false_negatives),
    });
  }
  sans::bench::PrintSCurves(
      "=== Fig. 8a': M-LSH S-curves vs l (r = 5) — more bands recover "
      "false negatives ===",
      labels, curves);
  std::printf("\n=== Fig. 8b: M-LSH time vs l — increasing in l ===\n");
  l_table.Print(std::cout);

  // --- sampled-band variant: Q_{r,l,k} with k < r*l. ---
  std::printf("\n=== sampled-band M-LSH (Q_{r,l,k}): k = 40 min-hashes "
              "approximating banded r=5, l=10 (k = 50) ===\n");
  sans::TablePrinter q_table(
      {"mode", "k", "total(s)", "candidates", "FN"});
  {
    const sans::RunResult banded = run(5, 10);
    q_table.AddRow({
        "banded",
        sans::TablePrinter::Int(50),
        sans::TablePrinter::Fixed(banded.seconds(), 3),
        sans::TablePrinter::Int(banded.report.num_candidates),
        sans::TablePrinter::Int(banded.candidate_metrics.false_negatives),
    });
    sans::MlshMinerConfig config;
    config.lsh.rows_per_band = 5;
    config.lsh.num_bands = 10;
    config.lsh.sampled = true;
    config.num_hashes = 40;
    config.seed = 19;
    sans::MlshMiner miner(config);
    sans::SweepOptions options;
    options.threshold = 0.5;
    auto sampled = sans::RunAndScore(miner, source, bench.truth, options);
    SANS_CHECK(sampled.ok());
    q_table.AddRow({
        "sampled",
        sans::TablePrinter::Int(40),
        sans::TablePrinter::Fixed(sampled->seconds(), 3),
        sans::TablePrinter::Int(sampled->report.num_candidates),
        sans::TablePrinter::Int(sampled->candidate_metrics.false_negatives),
    });
  }
  q_table.Print(std::cout);
  return 0;
}
