// Micro-benchmarks (google-benchmark) of the two Section 3.1
// candidate-generation algorithms over the same signature matrix —
// the row-sort vs hash-count ablation from DESIGN.md — plus the
// banded LSH bucketing for scale.

#include <benchmark/benchmark.h>

#include "candgen/hash_count.h"
#include "candgen/min_lsh.h"
#include "candgen/row_sort.h"
#include "data/synthetic_generator.h"
#include "matrix/row_stream.h"
#include "sketch/min_hash.h"

namespace sans {
namespace {

const SignatureMatrix& BenchSignatures() {
  static const SignatureMatrix* signatures = [] {
    SyntheticConfig config;
    config.num_rows = 20'000;
    config.num_cols = 2'000;
    config.bands = {{20, 50.0, 95.0}};
    config.min_density = 0.005;
    config.max_density = 0.02;
    config.seed = 11;
    auto dataset = GenerateSynthetic(config);
    SANS_CHECK(dataset.ok());
    MinHashConfig mh;
    mh.num_hashes = 60;
    mh.seed = 13;
    MinHashGenerator generator(mh);
    InMemoryRowStream stream(&dataset->matrix);
    auto sig = generator.Compute(&stream);
    SANS_CHECK(sig.ok());
    return new SignatureMatrix(std::move(sig).value());
  }();
  return *signatures;
}

void BM_RowSortCandidates(benchmark::State& state) {
  const int min_agreements = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RowSorter sorter(&BenchSignatures());
    auto candidates = sorter.Candidates(min_agreements);
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_RowSortCandidates)->Arg(6)->Arg(15)->Arg(30);

void BM_HashCountCandidates(benchmark::State& state) {
  const int min_agreements = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto candidates = HashCountMinHash(BenchSignatures(), min_agreements);
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_HashCountCandidates)->Arg(6)->Arg(15)->Arg(30);

void BM_MinLshBucketing(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  MinLshConfig config;
  config.rows_per_band = r;
  config.num_bands = 60 / r;
  for (auto _ : state) {
    MinLshCandidateGenerator generator(config);
    auto candidates = generator.Generate(BenchSignatures());
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_MinLshBucketing)->Arg(4)->Arg(6)->Arg(10);

}  // namespace
}  // namespace sans

BENCHMARK_MAIN();
