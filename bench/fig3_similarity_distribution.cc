// Fig. 3 reproduction: the similarity distribution of the (simulated)
// Sun web-log data. (a) the full histogram, dominated by a huge mass
// of barely-similar pairs; (b) the zoom on similarities >= 0.1 where
// the planted gif/applet bundle pairs form a heavy tail near 1.0.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/table_printer.h"
#include "lsh/distribution_estimator.h"

int main() {
  const sans::bench::WeblogBench bench = sans::bench::MakeWeblogBench();
  const sans::BinaryMatrix& matrix = bench.dataset.matrix;

  auto pairs = sans::BruteForceAllNonzeroPairs(matrix);
  SANS_CHECK(pairs.ok());
  const auto histogram_of = [&](int bins, double floor) {
    std::vector<uint64_t> histogram(bins, 0);
    const double width = (1.0 - floor) / bins;
    for (const sans::SimilarPair& p : *pairs) {
      if (p.similarity < floor) continue;
      int bin = static_cast<int>((p.similarity - floor) / width);
      if (bin >= bins) bin = bins - 1;
      ++histogram[bin];
    }
    return histogram;
  };

  std::printf("=== Fig. 3a: similarity distribution (all nonzero "
              "pairs) ===\n");
  {
    const int bins = 20;
    const std::vector<uint64_t> histogram = histogram_of(bins, 0.0);
    sans::TablePrinter table({"similarity range", "pairs"});
    for (int b = 0; b < bins; ++b) {
      char label[32];
      std::snprintf(label, sizeof(label), "[%.2f, %.2f)",
                    static_cast<double>(b) / bins,
                    static_cast<double>(b + 1) / bins);
      table.AddRow({label, sans::TablePrinter::Int(histogram[b])});
    }
    table.Print(std::cout);
  }

  std::printf("\n=== Fig. 3b: zoom on the interesting region "
              "(similarity >= 0.1) ===\n");
  {
    const int bins = 45;
    const std::vector<uint64_t> histogram = histogram_of(bins, 0.1);
    sans::TablePrinter table({"similarity", "pairs"});
    for (int b = 0; b < bins; ++b) {
      if (histogram[b] == 0) continue;
      table.AddRow({sans::TablePrinter::Fixed(0.1 + (b + 0.5) * 0.02, 2),
                    sans::TablePrinter::Int(histogram[b])});
    }
    table.Print(std::cout);
    std::printf("\nhigh-similarity tail (>= 0.9): %llu pairs — the "
                "auto-loaded resource bundles of the Sun data\n",
                static_cast<unsigned long long>(
                    bench.truth.CountAtOrAbove(0.9)));
  }

  std::printf("\n=== estimates used by the (r, l) optimizer ===\n");
  {
    sans::DistributionEstimatorOptions options;
    options.sample_columns = 250;
    options.seed = 3;
    auto sampled = sans::EstimateSimilarityDistribution(matrix, options);
    SANS_CHECK(sampled.ok());
    sans::SketchDistributionOptions sketch_options;
    sketch_options.seed = 5;
    auto sketched =
        sans::EstimateSimilarityDistributionSketch(matrix, sketch_options);
    SANS_CHECK(sketched.ok());
    const double act_high =
        static_cast<double>(bench.truth.CountAtOrAbove(0.5));
    std::printf(
        "pairs >= 0.5: actual %.0f | column-sample estimate: %.0f "
        "(blind to rare tails) | min-hash sketch estimate: %.0f\n",
        act_high, sampled->CountAtOrAbove(0.5),
        sketched->CountAtOrAbove(0.5));
  }
  return 0;
}
