// Synthetic-data validation (paper Section 5: "we have also performed
// tests for the synthetic data, and all algorithms behave similarly"
// — 10⁴ columns, rows varying 10⁴–10⁶, densities 1–5%, 100 planted
// pairs spread across five similarity bands).
//
// Two views:
//  1. per-band recall of the planted pairs for each algorithm at the
//     default parameters (the "behave similarly" check);
//  2. total running time as the row count scales (the paper's row
//     sweep; capped below 10⁶ to keep the bench under a minute).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "data/synthetic_generator.h"
#include "eval/table_printer.h"
#include "matrix/row_stream.h"
#include "mine/hlsh_miner.h"
#include "mine/kmh_miner.h"
#include "mine/mh_miner.h"
#include "mine/mlsh_miner.h"

namespace {

struct NamedMiner {
  std::string name;
  std::unique_ptr<sans::Miner> miner;
};

std::vector<NamedMiner> MakeMiners() {
  std::vector<NamedMiner> miners;
  {
    sans::MhMinerConfig config;
    config.min_hash.num_hashes = 100;
    config.min_hash.seed = 1;
    config.delta = 0.3;
    miners.push_back({"MH", std::make_unique<sans::MhMiner>(config)});
  }
  {
    sans::KmhMinerConfig config;
    config.sketch.k = 100;
    config.sketch.seed = 2;
    config.hash_count_slack = 0.4;
    config.delta = 0.3;
    miners.push_back({"K-MH", std::make_unique<sans::KmhMiner>(config)});
  }
  {
    sans::MlshMinerConfig config;
    config.lsh.rows_per_band = 4;
    config.lsh.num_bands = 25;
    config.seed = 3;
    miners.push_back({"M-LSH", std::make_unique<sans::MlshMiner>(config)});
  }
  {
    sans::HlshMinerConfig config;
    config.lsh.rows_per_run = 12;
    config.lsh.num_runs = 8;
    config.lsh.min_rows = 64;
    config.lsh.seed = 4;
    miners.push_back({"H-LSH", std::make_unique<sans::HlshMiner>(config)});
  }
  return miners;
}

}  // namespace

int main() {
  const bool small = sans::bench::SmallScale();

  // --- View 1: per-band recall on the paper-recipe dataset. ---
  {
    sans::SyntheticConfig config;
    config.num_rows = small ? 5'000 : 20'000;
    config.num_cols = small ? 1'000 : 10'000;
    if (small) {
      config.bands = {{2, 85.0, 95.0}, {2, 75.0, 85.0}, {2, 65.0, 75.0},
                      {2, 55.0, 65.0}, {2, 45.0, 55.0}};
    }
    config.seed = 101;
    auto dataset = sans::GenerateSynthetic(config);
    SANS_CHECK(dataset.ok());
    std::fprintf(stderr, "[bench] synthetic: %u x %u, %llu ones, %zu "
                 "planted pairs\n",
                 dataset->matrix.num_rows(), dataset->matrix.num_cols(),
                 static_cast<unsigned long long>(
                     dataset->matrix.num_ones()),
                 dataset->planted.size());
    sans::InMemorySource source(&dataset->matrix);

    const double band_bounds[] = {0.45, 0.55, 0.65, 0.75, 0.85, 0.95};
    sans::TablePrinter table({"algorithm", "(45,55)", "(55,65)",
                              "(65,75)", "(75,85)", "(85,95)",
                              "time(s)"});
    for (NamedMiner& m : MakeMiners()) {
      auto report = m.miner->Mine(source, 0.45);
      SANS_CHECK(report.ok());
      std::vector<std::string> row = {m.name};
      for (int band = 0; band < 5; ++band) {
        int total = 0;
        int found = 0;
        for (const sans::PlantedPair& planted : dataset->planted) {
          if (planted.target_similarity < band_bounds[band] ||
              planted.target_similarity >= band_bounds[band + 1]) {
            continue;
          }
          ++total;
          for (const sans::SimilarPair& p : report->pairs) {
            if (p.pair == planted.pair) {
              ++found;
              break;
            }
          }
        }
        row.push_back(total == 0
                          ? std::string("-")
                          : sans::TablePrinter::Fixed(
                                static_cast<double>(found) / total, 2));
      }
      row.push_back(sans::TablePrinter::Fixed(report->TotalSeconds(), 3));
      table.AddRow(std::move(row));
    }
    std::printf("=== synthetic data: recall of planted pairs per "
                "similarity band (s* = 0.45) ===\n");
    table.Print(std::cout);
  }

  // --- View 2: scaling with the row count. ---
  {
    std::printf("\n=== synthetic data: total time vs rows (the paper "
                "varies 10^4 to 10^6) ===\n");
    sans::TablePrinter table(
        {"rows", "MH(s)", "K-MH(s)", "M-LSH(s)", "H-LSH(s)"});
    const std::vector<sans::RowId> row_counts =
        small ? std::vector<sans::RowId>{5'000, 10'000}
              : std::vector<sans::RowId>{10'000, 50'000, 200'000};
    for (sans::RowId rows : row_counts) {
      sans::SyntheticConfig config;
      config.num_rows = rows;
      config.num_cols = small ? 1'000 : 4'000;
      config.bands = {{8, 55.0, 95.0}};
      config.spread_pairs = false;
      config.seed = 202;
      auto dataset = sans::GenerateSynthetic(config);
      SANS_CHECK(dataset.ok());
      sans::InMemorySource source(&dataset->matrix);
      std::vector<std::string> row = {sans::TablePrinter::Int(rows)};
      for (NamedMiner& m : MakeMiners()) {
        auto report = m.miner->Mine(source, 0.5);
        SANS_CHECK(report.ok());
        row.push_back(
            sans::TablePrinter::Fixed(report->TotalSeconds(), 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::printf("(signature phases scan the table once, so time grows "
                "~linearly in rows; candidate phases depend only on m "
                "and the similarity profile)\n");
  }
  return 0;
}
