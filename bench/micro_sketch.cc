// Benchmark gating the batched sketching kernels: times min-hash
// signature generation (k hash functions per row) and bottom-k sketch
// generation through the production generators against an in-bench
// reference that replicates the pre-kernel hot path — one virtual
// hash call per (row, function) through a boxed pointer, followed by
// a per-entry bounds-checked MinUpdate with the hash index striding
// across signature rows. Both paths draw the same hash functions, so
// their outputs must be byte-identical; the bench asserts that before
// it reports a single number.
//
// Emits BENCH_sketch.json with a speedup_vs_reference field per
// phase. In full mode the signatures phase at k=100 must reach a 2x
// speedup or the bench exits nonzero (the acceptance gate for the
// kernel rework); --smoke shrinks the table and skips the gate so
// sanitizer jobs can run the identity checks cheaply.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "data/synthetic_generator.h"
#include "matrix/row_stream.h"
#include "sketch/k_min_hash.h"
#include "sketch/min_hash.h"
#include "sketch/signature_matrix.h"
#include "util/bounded_heap.h"
#include "util/hashing.h"
#include "util/timer.h"

namespace sans {
namespace {

constexpr int kNumHashes = 100;

// The boxed virtual hasher the old hot path paid for on every
// (row, function) pair. Wrapping the bank keeps the hash values
// identical to the batched kernels while restoring the indirection.
class BoxedHasher {
 public:
  virtual ~BoxedHasher() = default;
  virtual uint64_t Hash(uint64_t key) const = 0;
};

class BoxedBankFunction final : public BoxedHasher {
 public:
  BoxedBankFunction(const HashFunctionBank* bank, int index)
      : bank_(bank), index_(index) {}
  uint64_t Hash(uint64_t key) const override {
    return bank_->Hash(index_, key);
  }

 private:
  const HashFunctionBank* bank_;
  int index_;
};

class BoxedRowHasher final : public BoxedHasher {
 public:
  BoxedRowHasher(HashFamily family, uint64_t seed)
      : hasher_(family, seed) {}
  uint64_t Hash(uint64_t key) const override { return hasher_.Hash(key); }

 private:
  RowHasher hasher_;
};

/// The pre-kernel min-hash scan: per row, k virtual hash calls, then
/// a column-outer / hash-inner update loop through the bounds-checked
/// SignatureMatrix::MinUpdate.
SignatureMatrix ReferenceMinHash(const BinaryMatrix& matrix,
                                 const MinHashConfig& config) {
  HashFunctionBank bank(config.family, config.num_hashes, config.seed);
  std::vector<std::unique_ptr<BoxedHasher>> hashers;
  hashers.reserve(config.num_hashes);
  for (int l = 0; l < config.num_hashes; ++l) {
    hashers.push_back(std::make_unique<BoxedBankFunction>(&bank, l));
  }
  SignatureMatrix signatures(config.num_hashes, matrix.num_cols());
  InMemoryRowStream stream(&matrix);
  SANS_CHECK(stream.Reset().ok());
  std::vector<uint64_t> row_hashes(config.num_hashes);
  RowView view;
  while (stream.Next(&view)) {
    if (view.columns.empty()) continue;
    for (int l = 0; l < config.num_hashes; ++l) {
      uint64_t h = hashers[l]->Hash(view.row);
      if (h == kEmptyMinHash) h -= 1;
      row_hashes[l] = h;
    }
    for (ColumnId c : view.columns) {
      for (int l = 0; l < config.num_hashes; ++l) {
        signatures.MinUpdate(l, c, row_hashes[l]);
      }
    }
  }
  return signatures;
}

/// The pre-kernel bottom-k scan: one virtual hash call per row.
KMinHashSketch ReferenceKMinHash(const BinaryMatrix& matrix,
                                 const KMinHashConfig& config) {
  const std::unique_ptr<BoxedHasher> hasher =
      std::make_unique<BoxedRowHasher>(config.family, config.seed);
  const ColumnId m = matrix.num_cols();
  std::vector<BoundedMaxHeap<uint64_t>> heaps;
  heaps.reserve(m);
  for (ColumnId c = 0; c < m; ++c) {
    heaps.emplace_back(static_cast<size_t>(config.k));
  }
  std::vector<uint64_t> cardinalities(m, 0);
  InMemoryRowStream stream(&matrix);
  SANS_CHECK(stream.Reset().ok());
  RowView view;
  while (stream.Next(&view)) {
    if (view.columns.empty()) continue;
    uint64_t value = hasher->Hash(view.row);
    if (value == kEmptyMinHash) value -= 1;
    for (ColumnId c : view.columns) {
      heaps[c].Offer(value);
      ++cardinalities[c];
    }
  }
  KMinHashSketch sketch(config.k, m);
  for (ColumnId c = 0; c < m; ++c) {
    std::vector<uint64_t> signature = heaps[c].TakeSortedValues();
    signature.erase(std::unique(signature.begin(), signature.end()),
                    signature.end());
    SANS_CHECK(
        sketch.SetColumn(c, std::move(signature), cardinalities[c]).ok());
  }
  return sketch;
}

void CheckSignaturesIdentical(const SignatureMatrix& a,
                              const SignatureMatrix& b) {
  SANS_CHECK_EQ(a.num_hashes(), b.num_hashes());
  SANS_CHECK_EQ(a.num_cols(), b.num_cols());
  for (int l = 0; l < a.num_hashes(); ++l) {
    for (ColumnId c = 0; c < a.num_cols(); ++c) {
      SANS_CHECK_EQ(a.Value(l, c), b.Value(l, c));
    }
  }
}

void CheckSketchesIdentical(const KMinHashSketch& a, const KMinHashSketch& b) {
  SANS_CHECK_EQ(a.k(), b.k());
  SANS_CHECK_EQ(a.num_cols(), b.num_cols());
  for (ColumnId c = 0; c < a.num_cols(); ++c) {
    SANS_CHECK_EQ(a.ColumnCardinality(c), b.ColumnCardinality(c));
    const auto sig_a = a.Signature(c);
    const auto sig_b = b.Signature(c);
    SANS_CHECK_EQ(sig_a.size(), sig_b.size());
    for (size_t i = 0; i < sig_a.size(); ++i) {
      SANS_CHECK_EQ(sig_a[i], sig_b[i]);
    }
  }
}

/// Best-of-N wall time of `fn` (first call's result is returned).
template <typename Fn>
auto TimeBestOf(int repetitions, double* best_seconds, Fn&& fn) {
  Stopwatch watch;
  auto result = fn();
  *best_seconds = watch.ElapsedSeconds();
  for (int i = 1; i < repetitions; ++i) {
    Stopwatch again;
    auto repeat = fn();
    *best_seconds = std::min(*best_seconds, again.ElapsedSeconds());
    (void)repeat;
  }
  return result;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // The paper's synthetic shape (Section 5): 10^4 columns. At this
  // width the k x m signature matrix is ~8 MB, so the reference
  // path's column-strided updates (stride = 80 KB) pay real cache
  // misses — exactly the access pattern the blocked kernel removes.
  SyntheticConfig config;
  config.num_rows = smoke ? 2'000 : 20'000;
  config.num_cols = 10'000;
  config.min_density = 0.01;
  config.max_density = 0.03;
  config.seed = 7;
  auto dataset = GenerateSynthetic(config);
  SANS_CHECK(dataset.ok());
  const BinaryMatrix& matrix = dataset->matrix;
  std::fprintf(stderr, "[bench] sketch table: %u rows x %u cols, %llu ones\n",
               matrix.num_rows(), matrix.num_cols(),
               static_cast<unsigned long long>(matrix.num_ones()));

  const int repetitions = smoke ? 1 : 3;
  std::vector<bench::BenchPhaseResult> results;
  const auto emit = [&](const char* phase, double seconds, double speedup) {
    bench::BenchPhaseResult r;
    r.phase = phase;
    r.threads = 1;
    r.seconds = seconds;
    r.rows_per_sec = seconds > 0 ? matrix.num_rows() / seconds : 0.0;
    r.speedup_key = "speedup_vs_reference";
    r.speedup_vs_1_thread = speedup;
    results.push_back(r);
  };

  // Min-hash signatures, k = 100: the acceptance gate.
  MinHashConfig mh;
  mh.num_hashes = kNumHashes;
  mh.seed = 3;
  double reference_seconds = 0.0;
  const SignatureMatrix reference_signatures = TimeBestOf(
      repetitions, &reference_seconds,
      [&] { return ReferenceMinHash(matrix, mh); });
  double blocked_seconds = 0.0;
  const SignatureMatrix blocked_signatures = TimeBestOf(
      repetitions, &blocked_seconds, [&] {
        MinHashGenerator generator(mh);
        InMemoryRowStream stream(&matrix);
        auto signatures = generator.Compute(&stream);
        SANS_CHECK(signatures.ok());
        return std::move(signatures).value();
      });
  CheckSignaturesIdentical(reference_signatures, blocked_signatures);
  const double mh_speedup =
      blocked_seconds > 0 ? reference_seconds / blocked_seconds : 0.0;
  emit("signatures_reference", reference_seconds, 1.0);
  emit("signatures_blocked", blocked_seconds, mh_speedup);
  std::fprintf(stderr,
               "[bench] signatures k=%d: reference %.3fs, blocked %.3fs "
               "(%.2fx), outputs byte-identical\n",
               kNumHashes, reference_seconds, blocked_seconds, mh_speedup);

  // Bottom-k sketches (single hash per row; the kernel win is the
  // batched clamped hashing, so the margin is smaller — not gated).
  KMinHashConfig kmh;
  kmh.k = kNumHashes;
  kmh.seed = 5;
  double kmh_reference_seconds = 0.0;
  const KMinHashSketch reference_sketch = TimeBestOf(
      repetitions, &kmh_reference_seconds,
      [&] { return ReferenceKMinHash(matrix, kmh); });
  double kmh_blocked_seconds = 0.0;
  const KMinHashSketch blocked_sketch = TimeBestOf(
      repetitions, &kmh_blocked_seconds, [&] {
        KMinHashGenerator generator(kmh);
        InMemoryRowStream stream(&matrix);
        auto sketch = generator.Compute(&stream);
        SANS_CHECK(sketch.ok());
        return std::move(sketch).value();
      });
  CheckSketchesIdentical(reference_sketch, blocked_sketch);
  const double kmh_speedup = kmh_blocked_seconds > 0
                                 ? kmh_reference_seconds / kmh_blocked_seconds
                                 : 0.0;
  emit("kmh_reference", kmh_reference_seconds, 1.0);
  emit("kmh_blocked", kmh_blocked_seconds, kmh_speedup);
  std::fprintf(stderr,
               "[bench] kmh k=%d: reference %.3fs, blocked %.3fs (%.2fx), "
               "outputs byte-identical\n",
               kNumHashes, kmh_reference_seconds, kmh_blocked_seconds,
               kmh_speedup);

  bench::WriteBenchJson(
      "BENCH_sketch.json", "sketch",
      {{"rows", bench::JsonNumber(matrix.num_rows())},
       {"cols", bench::JsonNumber(matrix.num_cols())},
       {"ones", bench::JsonNumber(static_cast<double>(matrix.num_ones()))},
       {"k", bench::JsonNumber(kNumHashes)},
       {"scale", smoke ? "\"smoke\"" : "\"full\""}},
      results);

  std::printf("\n%-22s %10s %14s %10s\n", "phase", "seconds", "rows/sec",
              "speedup");
  for (const bench::BenchPhaseResult& r : results) {
    std::printf("%-22s %10.3f %14.0f %9.2fx\n", r.phase.c_str(), r.seconds,
                r.rows_per_sec, r.speedup_vs_1_thread);
  }
  std::printf("\nwrote BENCH_sketch.json\n");

  if (!smoke && mh_speedup < 2.0) {
    std::fprintf(stderr,
                 "[bench] FAIL: signatures speedup %.2fx < 2.0x gate\n",
                 mh_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sans

int main(int argc, char** argv) { return sans::Main(argc, argv); }
