// Fig. 6 reproduction: quality and running time of the K-MH algorithm
// on the (simulated) Sun data as k and s* vary. The headline contrast
// with Fig. 5: signature generation cost is SUBLINEAR in k on sparse
// data, because a column never stores more hash values than it has 1s
// ("the number of hash values extracted from each column is upper
// bounded by the number of 1s of that column").

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/sweep.h"
#include "matrix/row_stream.h"
#include "mine/kmh_miner.h"
#include "sketch/k_min_hash.h"

int main() {
  const sans::bench::WeblogBench bench = sans::bench::MakeWeblogBench();
  sans::InMemorySource source(&bench.dataset.matrix);

  const auto run = [&](int k, double threshold) {
    sans::KmhMinerConfig config;
    config.sketch.k = k;
    config.sketch.seed = 13;
    config.hash_count_slack = 0.4;
    config.delta = 0.25;
    sans::KmhMiner miner(config);
    sans::SweepOptions options;
    options.threshold = threshold;
    options.scurve_floor = 0.1;
    auto result = sans::RunAndScore(miner, source, bench.truth, options);
    SANS_CHECK(result.ok());
    return std::move(result).value();
  };

  // --- 6a + 6b: k sweep at s* = 0.5. ---
  const int ks[] = {25, 50, 100, 200, 400};
  std::vector<sans::SCurve> curves;
  std::vector<std::string> labels;
  sans::TablePrinter times({"k", "total(s)", "sig(s)", "stored values",
                            "k*m (dense)", "candidates", "FN"});
  for (int k : ks) {
    const sans::RunResult r = run(k, 0.5);
    curves.push_back(r.scurve);
    labels.push_back("k=" + std::to_string(k));
    // Measure the sketch size directly to show the sublinearity.
    sans::KMinHashConfig sketch_config;
    sketch_config.k = k;
    sketch_config.seed = 13;
    sans::KMinHashGenerator generator(sketch_config);
    sans::InMemoryRowStream stream(&bench.dataset.matrix);
    auto sketch = generator.Compute(&stream);
    SANS_CHECK(sketch.ok());
    times.AddRow({
        sans::TablePrinter::Int(k),
        sans::TablePrinter::Fixed(r.seconds(), 3),
        sans::TablePrinter::Fixed(
            r.report.timers.Total(sans::kPhaseSignatures), 3),
        sans::TablePrinter::Int(sketch->TotalSignatureSize()),
        sans::TablePrinter::Int(static_cast<uint64_t>(k) *
                                bench.dataset.matrix.num_cols()),
        sans::TablePrinter::Int(r.report.num_candidates),
        sans::TablePrinter::Int(r.candidate_metrics.false_negatives),
    });
  }
  sans::bench::PrintSCurves(
      "=== Fig. 6a: K-MH S-curves vs k (s* = 0.5) ===", labels, curves);
  std::printf("\n=== Fig. 6b: K-MH cost vs k — stored values grow "
              "sublinearly in k (vs the dense k*m of MH) ===\n");
  times.Print(std::cout);

  // --- 6c + 6d: s* sweep at k = 100. ---
  const double cutoffs[] = {0.25, 0.5, 0.75};
  curves.clear();
  labels.clear();
  sans::TablePrinter cutoff_times(
      {"s*", "total(s)", "candidates", "pairs", "FN"});
  for (double s : cutoffs) {
    const sans::RunResult r = run(100, s);
    curves.push_back(r.scurve);
    labels.push_back("s*=" + sans::TablePrinter::Fixed(s, 2));
    cutoff_times.AddRow({
        sans::TablePrinter::Fixed(s, 2),
        sans::TablePrinter::Fixed(r.seconds(), 3),
        sans::TablePrinter::Int(r.report.num_candidates),
        sans::TablePrinter::Int(r.report.pairs.size()),
        sans::TablePrinter::Int(r.candidate_metrics.false_negatives),
    });
  }
  sans::bench::PrintSCurves(
      "=== Fig. 6c: K-MH S-curves vs s* (k = 100) ===", labels, curves);
  std::printf("\n=== Fig. 6d: K-MH running time vs s* ===\n");
  cutoff_times.Print(std::cout);
  return 0;
}
