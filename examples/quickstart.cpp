// Quickstart: build a small 0/1 table, mine all column pairs with
// Jaccard similarity >= 0.5 using the Min-Hashing pipeline, and print
// them. Mirrors the paper's Example 1 workflow at toy scale.
//
// Run: ./quickstart

#include <cstdio>

#include "matrix/binary_matrix.h"
#include "matrix/row_stream.h"
#include "mine/mh_miner.h"

int main() {
  // A tiny market-basket table: rows are baskets, columns are items.
  //   item 0 and item 1 are bought together in 4 of 5 baskets that
  //   contain either; item 2 rides along occasionally.
  sans::Result<sans::BinaryMatrix> matrix = sans::BinaryMatrix::FromRows(
      /*num_rows=*/8, /*num_cols=*/4,
      {
          {0, 1},     // basket 0: items 0, 1
          {0, 1, 2},  // basket 1
          {0, 1},     // basket 2
          {1},        // basket 3
          {0, 1, 3},  // basket 4
          {2, 3},     // basket 5
          {3},        // basket 6
          {0, 1},     // basket 7
      });
  if (!matrix.ok()) {
    std::fprintf(stderr, "failed to build table: %s\n",
                 matrix.status().ToString().c_str());
    return 1;
  }

  // The miner reads the table through a RowStreamSource; swap
  // InMemorySource for TableFileSource to mine a disk-resident table.
  sans::InMemorySource source(&matrix.value());

  sans::MhMinerConfig config;
  config.min_hash.num_hashes = 200;  // k: accuracy knob (Theorem 1)
  config.min_hash.seed = 42;         // reproducible runs
  sans::MhMiner miner(config);

  sans::Result<sans::MiningReport> report = miner.Mine(source, /*s*=*/0.5);
  if (!report.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("similar pairs (S >= 0.5):\n");
  for (const sans::SimilarPair& pair : report->pairs) {
    std::printf("  items (%u, %u)  similarity %.3f\n", pair.pair.first,
                pair.pair.second, pair.similarity);
  }
  std::printf("candidates examined: %llu, total time: %.4fs\n",
              static_cast<unsigned long long>(report->num_candidates),
              report->TotalSeconds());
  return 0;
}
