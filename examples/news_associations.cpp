// News-corpus scenario (paper Sections 2 and 6, Fig. 1): mine word
// pairs that co-occur with high confidence but negligible support —
// the "(Dalai, Lama)" associations a support-pruned a-priori cannot
// reach. Shows both the similarity miner and the directed
// high-confidence rule miner, and contrasts them with a-priori at a
// realistic support threshold.
//
// Run: ./news_associations [num_docs] [vocab]

#include <cstdio>
#include <cstdlib>

#include "data/news_generator.h"
#include "matrix/row_stream.h"
#include "mine/apriori.h"
#include "mine/confidence_miner.h"
#include "mine/kmh_miner.h"

int main(int argc, char** argv) {
  sans::NewsConfig config;
  config.num_docs = argc > 1 ? std::atoi(argv[1]) : 30'000;
  config.vocab_size = argc > 2 ? std::atoi(argv[2]) : 5'000;
  config.num_collocations = 16;
  config.collocation_docs = 14;
  config.num_clusters = 2;
  config.seed = 11;

  std::printf("simulating news corpus: %u docs x %u words...\n",
              config.num_docs, config.vocab_size);
  auto dataset = sans::GenerateNews(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  sans::InMemorySource source(&dataset->matrix);

  // --- Similar pairs via K-Min-Hash. ---
  sans::KmhMinerConfig kmh_config;
  kmh_config.sketch.k = 120;
  kmh_config.sketch.seed = 5;
  kmh_config.hash_count_slack = 0.4;
  sans::KmhMiner kmh(kmh_config);
  auto similar = kmh.Mine(source, 0.5);
  if (!similar.ok()) {
    std::fprintf(stderr, "%s\n", similar.status().ToString().c_str());
    return 1;
  }
  std::printf("\nK-MH: %zu similar word pairs (S >= 0.5) in %.3fs:\n",
              similar->pairs.size(), similar->TotalSeconds());
  const size_t show =
      similar->pairs.size() < 16 ? similar->pairs.size() : 16;
  for (size_t i = 0; i < show; ++i) {
    const sans::SimilarPair& p = similar->pairs[i];
    std::printf("  %.3f  (%s, %s)\n", p.similarity,
                dataset->words[p.pair.first].c_str(),
                dataset->words[p.pair.second].c_str());
  }

  // --- Directed high-confidence rules (Section 6). ---
  sans::ConfidenceMinerConfig conf_config;
  conf_config.min_hash.num_hashes = 150;
  conf_config.min_hash.seed = 9;
  sans::ConfidenceMiner conf_miner(conf_config);
  auto rules = conf_miner.Mine(source, 0.9);
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().ToString().c_str());
    return 1;
  }
  std::printf("\nconfidence miner: %zu rules (conf >= 0.9) in %.3fs:\n",
              rules->rules.size(), rules->timers.GrandTotal());
  const size_t rshow = rules->rules.size() < 12 ? rules->rules.size() : 12;
  for (size_t i = 0; i < rshow; ++i) {
    const sans::ConfidenceRule& r = rules->rules[i];
    std::printf("  %s => %s  (conf %.2f)\n",
                dataset->words[r.antecedent].c_str(),
                dataset->words[r.consequent].c_str(), r.confidence);
  }

  // --- What a-priori sees at a 0.1% support threshold. ---
  auto apriori = sans::AprioriSimilarPairs(dataset->matrix, 0.001, 0.5);
  if (!apriori.ok()) {
    std::fprintf(stderr, "%s\n", apriori.status().ToString().c_str());
    return 1;
  }
  int planted_survivors = 0;
  const uint64_t min_count = static_cast<uint64_t>(
      0.001 * dataset->matrix.num_rows());
  for (const sans::ColumnPair& pair : dataset->collocations) {
    if (dataset->matrix.ColumnCardinality(pair.first) >= min_count &&
        dataset->matrix.ColumnCardinality(pair.second) >= min_count) {
      ++planted_survivors;
    }
  }
  std::printf("\na-priori at 0.1%% support: %llu of %u words survive "
              "pruning; %d of %d planted collocations still visible; "
              "%zu similar pairs reported\n",
              static_cast<unsigned long long>(apriori->num_frequent_columns),
              config.vocab_size, planted_survivors,
              config.num_collocations, apriori->pairs.size());
  return 0;
}
