// Web-log scenario (the paper's Sun Microsystems use case): find URLs
// that are accessed by nearly the same set of client IPs — in
// practice, images and applets auto-loaded by a parent page. Compares
// the M-LSH miner (with optimizer-chosen parameters) against the
// planted bundle ground truth.
//
// Run: ./weblog_similarity [num_clients] [num_urls]

#include <cstdio>
#include <cstdlib>

#include "data/weblog_generator.h"
#include "lsh/distribution_estimator.h"
#include "matrix/row_stream.h"
#include "mine/mlsh_miner.h"

int main(int argc, char** argv) {
  sans::WeblogConfig data_config;
  data_config.num_clients = argc > 1 ? std::atoi(argv[1]) : 20'000;
  data_config.num_urls = argc > 2 ? std::atoi(argv[2]) : 1'300;
  data_config.num_bundles = 40;
  data_config.seed = 7;

  std::printf("simulating web log: %u clients x %u urls...\n",
              data_config.num_clients, data_config.num_urls);
  auto dataset = sans::GenerateWeblog(data_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("  %llu hits recorded\n",
              static_cast<unsigned long long>(dataset->matrix.num_ones()));

  // Estimate the similarity distribution: column sampling for the
  // dominant low mass, min-hash sketching for the rare high tail
  // (which drives the optimizer's false-negative bound), then let the
  // Section 4.1 optimizer pick (r, l) for a <= ~5 FN budget.
  sans::DistributionEstimatorOptions est_options;
  est_options.sample_columns = 300;
  est_options.seed = 1;
  auto low =
      sans::EstimateSimilarityDistribution(dataset->matrix, est_options);
  sans::SketchDistributionOptions sketch_options;
  sketch_options.seed = 2;
  auto high = sans::EstimateSimilarityDistributionSketch(dataset->matrix,
                                                         sketch_options);
  if (!low.ok() || !high.ok()) {
    std::fprintf(stderr, "distribution estimation failed\n");
    return 1;
  }
  const sans::SimilarityDistribution distr_value =
      sans::MergeDistributions(*low, *high, 0.25);
  const sans::Result<sans::SimilarityDistribution> distr(distr_value);

  sans::LshOptimizerOptions opt_options;
  opt_options.s0 = 0.7;
  opt_options.max_false_negatives = 5.0;
  opt_options.max_false_positives = 50'000.0;
  auto miner = sans::MlshMiner::FromDistribution(
      *distr, opt_options, sans::HashFamily::kSplitMix64, /*seed=*/3);
  if (!miner.ok()) {
    std::fprintf(stderr, "optimizer found no feasible (r, l): %s\n",
                 miner.status().ToString().c_str());
    return 1;
  }
  std::printf("optimizer chose r=%d, l=%d (k=%d min-hashes)\n",
              miner->config().lsh.rows_per_band,
              miner->config().lsh.num_bands,
              miner->config().lsh.rows_per_band *
                  miner->config().lsh.num_bands);

  sans::InMemorySource source(&dataset->matrix);
  auto report = miner->Mine(source, 0.7);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\nfound %zu URL pairs with similarity >= 0.7 "
              "(%llu candidates, %.3fs)\n",
              report->pairs.size(),
              static_cast<unsigned long long>(report->num_candidates),
              report->TotalSeconds());
  const size_t show = report->pairs.size() < 12 ? report->pairs.size() : 12;
  for (size_t i = 0; i < show; ++i) {
    const sans::SimilarPair& p = report->pairs[i];
    std::printf("  %.3f  %-34s %s\n", p.similarity,
                dataset->url_names[p.pair.first].c_str(),
                dataset->url_names[p.pair.second].c_str());
  }

  // Score against the planted bundles.
  int bundle_pairs = 0;
  int bundle_found = 0;
  for (const sans::UrlBundle& bundle : dataset->bundles) {
    for (sans::ColumnId res : bundle.resources) {
      if (dataset->matrix.Similarity(bundle.parent, res) < 0.7) continue;
      ++bundle_pairs;
      for (const sans::SimilarPair& p : report->pairs) {
        if (p.pair == sans::ColumnPair(bundle.parent, res)) {
          ++bundle_found;
          break;
        }
      }
    }
  }
  std::printf("\nbundle recall: %d / %d parent-resource pairs above the "
              "threshold were found\n",
              bundle_found, bundle_pairs);
  return 0;
}
