// Online/interactive mining (paper Section 4, citing the online
// aggregation framework): process one LSH band at a time, printing
// newly confirmed pairs and the residual false-negative bound after
// each iteration. A user would watch this stream and interrupt once
// the discoveries become uninteresting; here we stop automatically
// when two consecutive bands discover nothing new.
//
// Run: ./online_mining [num_clients] [num_urls]

#include <cstdio>
#include <cstdlib>

#include "data/weblog_generator.h"
#include "matrix/row_stream.h"
#include "mine/online_mlsh.h"

int main(int argc, char** argv) {
  sans::WeblogConfig data_config;
  data_config.num_clients = argc > 1 ? std::atoi(argv[1]) : 30'000;
  data_config.num_urls = argc > 2 ? std::atoi(argv[2]) : 2'000;
  data_config.num_bundles = 60;
  data_config.seed = 19;

  std::printf("simulating web log: %u clients x %u urls...\n",
              data_config.num_clients, data_config.num_urls);
  auto dataset = sans::GenerateWeblog(data_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  sans::InMemorySource source(&dataset->matrix);

  sans::OnlineMlshConfig config;
  config.rows_per_band = 5;
  config.max_bands = 30;
  config.seed = 27;
  sans::OnlineMlshMiner miner(config);
  const double threshold = 0.6;
  if (const sans::Status s = miner.Start(source, threshold); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("mining interactively at s* = %.2f (r = %d, up to %d "
              "bands):\n\n",
              threshold, config.rows_per_band, config.max_bands);
  int quiet_bands = 0;
  while (!miner.done()) {
    auto step = miner.Step();
    if (!step.ok()) {
      std::fprintf(stderr, "%s\n", step.status().ToString().c_str());
      return 1;
    }
    std::printf("band %2d: +%2zu pairs (total %3zu), residual FN bound "
                "at s* %.4f\n",
                step->band, step->new_pairs.size(), miner.found().size(),
                step->residual_fn_probability);
    for (const sans::SimilarPair& p : step->new_pairs) {
      std::printf("          %.3f  %-30s %s\n", p.similarity,
                  dataset->url_names[p.pair.first].c_str(),
                  dataset->url_names[p.pair.second].c_str());
    }
    // "The user can terminate the process when the output produced
    // appears to be less and less interesting."
    quiet_bands = step->new_pairs.empty() ? quiet_bands + 1 : 0;
    if (quiet_bands >= 2 && miner.bands_processed() >= 8) {
      std::printf("\nno discoveries for %d consecutive bands — "
                  "interrupting early (paper's online use case)\n",
                  quiet_bands);
      break;
    }
  }
  std::printf("\nfinal: %zu pairs from %llu candidates after %d of %d "
              "bands\n",
              miner.found().size(),
              static_cast<unsigned long long>(miner.total_candidates()),
              miner.bands_processed(), config.max_bands);
  return 0;
}
