// Collaborative-filtering scenario (one of the paper's Section 1
// motivations): rows are items, columns are users, and a 1 means the
// user consumed the item. Users with highly-similar consumption sets
// are "taste neighbours"; recommendations for a user are items their
// neighbours consumed that they have not. Built on the H-LSH miner to
// exercise the data-direct scheme.
//
// Run: ./collaborative_filtering [num_items] [num_users]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "matrix/matrix_builder.h"
#include "matrix/row_stream.h"
#include "mine/hlsh_miner.h"
#include "util/random.h"

namespace {

/// Synthesizes taste communities: users in the same community consume
/// from a shared item pool, plus individual noise.
sans::BinaryMatrix MakeRatings(sans::RowId num_items,
                               sans::ColumnId num_users, int communities,
                               sans::Xoshiro256* rng) {
  sans::MatrixBuilder builder(num_items, num_users);
  const sans::RowId pool_size = num_items / communities;
  for (sans::ColumnId user = 0; user < num_users; ++user) {
    const int community = static_cast<int>(rng->NextBounded(communities));
    const sans::RowId pool_start = community * pool_size;
    // ~50% of the community pool, plus 1% background noise
    // (same-community Jaccard ~ 0.25/0.75 = 0.33).
    for (sans::RowId i = 0; i < pool_size; ++i) {
      if (rng->NextBernoulli(0.5)) {
        SANS_CHECK(builder.Set(pool_start + i, user).ok());
      }
    }
    for (int noise = 0; noise < static_cast<int>(num_items) / 100;
         ++noise) {
      SANS_CHECK(
          builder.Set(static_cast<sans::RowId>(
                          rng->NextBounded(num_items)),
                      user)
              .ok());
    }
  }
  auto matrix = std::move(builder).Build();
  SANS_CHECK(matrix.ok());
  return std::move(matrix).value();
}

}  // namespace

int main(int argc, char** argv) {
  const sans::RowId num_items = argc > 1 ? std::atoi(argv[1]) : 2'000;
  const sans::ColumnId num_users = argc > 2 ? std::atoi(argv[2]) : 800;
  const int communities = 8;

  std::printf("synthesizing ratings: %u items x %u users, %d taste "
              "communities...\n",
              num_items, num_users, communities);
  sans::Xoshiro256 rng(17);
  const sans::BinaryMatrix ratings =
      MakeRatings(num_items, num_users, communities, &rng);

  sans::HlshMinerConfig config;
  config.lsh.rows_per_run = 12;
  config.lsh.num_runs = 6;
  config.lsh.min_rows = 32;
  config.lsh.seed = 23;
  sans::HlshMiner miner(config);
  sans::InMemorySource source(&ratings);
  auto report = miner.Mine(source, 0.25);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("H-LSH found %zu taste-neighbour pairs (S >= 0.25) from "
              "%llu candidates in %.3fs\n",
              report->pairs.size(),
              static_cast<unsigned long long>(report->num_candidates),
              report->TotalSeconds());

  // Neighbour lists per user (top 5 by similarity).
  std::map<sans::ColumnId, std::vector<sans::SimilarPair>> neighbours;
  for (const sans::SimilarPair& p : report->pairs) {
    neighbours[p.pair.first].push_back(p);
    neighbours[p.pair.second].push_back(p);
  }

  // Recommend for the first user with neighbours: items neighbours
  // consumed that the user has not.
  for (const auto& [user, list] : neighbours) {
    std::vector<int> scores(num_items, 0);
    int used = 0;
    for (const sans::SimilarPair& p : list) {
      if (used++ >= 5) break;
      const sans::ColumnId other =
          p.pair.first == user ? p.pair.second : p.pair.first;
      for (sans::RowId item : ratings.Column(other)) {
        if (!ratings.Get(item, user)) ++scores[item];
      }
    }
    std::vector<sans::RowId> ranked;
    for (sans::RowId item = 0; item < num_items; ++item) {
      if (scores[item] > 0) ranked.push_back(item);
    }
    std::sort(ranked.begin(), ranked.end(),
              [&](sans::RowId a, sans::RowId b) {
                return scores[a] > scores[b];
              });
    std::printf("\nuser %u: %zu neighbours, top recommendations:", user,
                list.size());
    for (size_t i = 0; i < ranked.size() && i < 8; ++i) {
      std::printf(" item%u(x%d)", ranked[i], scores[ranked[i]]);
    }
    std::printf("\n");
    break;
  }
  return 0;
}
