// Copy detection (paper Section 1: "identifying identical or similar
// documents and web pages [4], [13]"): shingle a synthetic document
// collection containing planted plagiarized pairs, then mine
// near-duplicates with K-Min-Hash. Documents are columns, hashed
// w-shingles are rows, and Broder resemblance is exactly the Jaccard
// similarity the library computes.
//
// Run: ./copy_detection [num_docs]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/shingling.h"
#include "matrix/row_stream.h"
#include "mine/kmh_miner.h"
#include "util/random.h"

namespace {

/// Builds a vocabulary of pseudo-words.
std::vector<std::string> MakeVocabulary(int size, sans::Xoshiro256* rng) {
  std::vector<std::string> vocab(size);
  for (int w = 0; w < size; ++w) {
    const int len = 3 + static_cast<int>(rng->NextBounded(6));
    for (int c = 0; c < len; ++c) {
      vocab[w].push_back('a' + static_cast<char>(rng->NextBounded(26)));
    }
  }
  return vocab;
}

/// A random document of `words` vocabulary words.
std::string MakeDocument(const std::vector<std::string>& vocab, int words,
                         sans::Xoshiro256* rng) {
  std::string doc;
  for (int w = 0; w < words; ++w) {
    if (!doc.empty()) doc.push_back(' ');
    doc += vocab[rng->NextZipf(vocab.size(), 1.02)];
  }
  return doc;
}

/// Plagiarize: copy `source`, then rewrite ~`edit_rate` of the words.
std::string Plagiarize(const std::string& source,
                       const std::vector<std::string>& vocab,
                       double edit_rate, sans::Xoshiro256* rng) {
  const std::vector<std::string> tokens =
      sans::TokenizeForShingling(source, /*normalize=*/true);
  std::string copy;
  for (const std::string& token : tokens) {
    if (!copy.empty()) copy.push_back(' ');
    if (rng->NextBernoulli(edit_rate)) {
      copy += vocab[rng->NextZipf(vocab.size(), 1.02)];
    } else {
      copy += token;
    }
  }
  return copy;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_docs = argc > 1 ? std::atoi(argv[1]) : 400;
  sans::Xoshiro256 rng(29);
  const std::vector<std::string> vocab = MakeVocabulary(3000, &rng);

  // Corpus: independent documents, plus every 25th document is a
  // light or heavy rewrite of its predecessor.
  std::vector<std::string> docs;
  std::vector<std::pair<int, int>> planted;
  for (int d = 0; d < num_docs; ++d) {
    if (d % 25 == 24) {
      // Light rewrites keep resemblance ~0.7; heavier ones ~0.35
      // (each edited word kills up to w = 4 shingles).
      const double edit_rate = (d % 50 == 49) ? 0.15 : 0.05;
      docs.push_back(Plagiarize(docs[d - 1], vocab, edit_rate, &rng));
      planted.emplace_back(d - 1, d);
    } else {
      docs.push_back(MakeDocument(vocab, 250, &rng));
    }
  }
  std::printf("corpus: %d documents, %zu planted plagiarism pairs\n",
              num_docs, planted.size());

  sans::ShinglingOptions shingling;
  shingling.shingle_size = 4;
  shingling.seed = 1;
  auto matrix = sans::ShingleDocuments(docs, shingling);
  if (!matrix.ok()) {
    std::fprintf(stderr, "%s\n", matrix.status().ToString().c_str());
    return 1;
  }
  std::printf("shingled: %llu distinct (shingle, doc) entries\n",
              static_cast<unsigned long long>(matrix->num_ones()));

  sans::InMemorySource source(&matrix.value());
  sans::KmhMinerConfig config;
  config.sketch.k = 128;
  config.sketch.seed = 3;
  config.hash_count_slack = 0.3;
  sans::KmhMiner miner(config);
  auto report = miner.Mine(source, /*threshold=*/0.25);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("\nnear-duplicate pairs (resemblance >= 0.25), %.3fs:\n",
              report->TotalSeconds());
  for (const sans::SimilarPair& p : report->pairs) {
    bool is_planted = false;
    for (const auto& [a, b] : planted) {
      if (sans::ColumnPair(a, b) == p.pair) {
        is_planted = true;
        break;
      }
    }
    std::printf("  doc %3u ~ doc %3u  resemblance %.3f  %s\n",
                p.pair.first, p.pair.second, p.similarity,
                is_planted ? "(planted)" : "(!)");
  }
  int found = 0;
  for (const auto& [a, b] : planted) {
    for (const sans::SimilarPair& p : report->pairs) {
      if (sans::ColumnPair(a, b) == p.pair) {
        ++found;
        break;
      }
    }
  }
  std::printf("\nrecall: %d / %zu planted pairs detected\n", found,
              planted.size());
  return 0;
}
